"""Partition-invariance kernels + tensor-parallel sharding layer.

Locks the two bitwise invariances TP is built on (column slicing and
subtree-aligned tree reduction) against shapes where BLAS ``np.matmul``
sharding demonstrably diverges, then checks the autograd ops, the
name-transparent ``TPLinear`` swap, layout invariance across TP degrees,
and the process fan-out path including its fallbacks.
"""

import numpy as np
import pytest

from repro.dist.kernels import (
    col_linear,
    column_grid,
    det_matmul,
    row_linear,
    subtree_aligned,
    tree_sum,
)
from repro.dist.tp import TPGroup, TPLinear, tp_enable, validate_tp
from repro.nn import TransformerLM
from repro.obs import use_registry
from repro.tensor import Tensor, no_grad

from ..conftest import small_config

# Shapes where OpenBLAS matmul is NOT bitwise column-partition
# invariant on this container (found by adversarial search); the det
# kernel must be invariant on exactly these.
ADVERSARIAL = [
    ((1, 128), (128, 128), 3),
    ((33, 128), (128, 344), 4),
    ((2, 64), (64, 176), 2),
    ((1, 64), (64, 64), 3),
    ((4, 48), (48, 128), 8),
]


def _rand(shape, seed):
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


class TestDetMatmul:
    @pytest.mark.parametrize("xs,ws,splits", ADVERSARIAL)
    def test_column_partition_invariance(self, xs, ws, splits):
        x, w = _rand(xs, 0), _rand(ws, 1)
        full = det_matmul(x, w)
        parts = [
            det_matmul(x, np.ascontiguousarray(w[:, lo:hi]))
            for lo, hi in column_grid(w.shape[1], splits)
        ]
        assert np.concatenate(parts, axis=-1).tobytes() == full.tobytes()

    def test_batched_leading_dims(self):
        x, w = _rand((3, 5, 16), 2), _rand((16, 24), 3)
        out = det_matmul(x, w)
        assert out.shape == (3, 5, 24)
        np.testing.assert_allclose(out, x @ w, rtol=1e-5, atol=1e-5)

    def test_matches_matmul_numerically(self):
        x, w = _rand((7, 33), 4), _rand((33, 19), 5)
        np.testing.assert_allclose(det_matmul(x, w), x @ w, rtol=1e-5, atol=1e-5)


class TestTreeSum:
    @pytest.mark.parametrize("tp", [1, 2, 4, 8])
    def test_subtree_local_reduction_is_bitwise(self, tp):
        """A rank reducing its own chunk span locally, then combining
        across ranks, reproduces the full halving tree exactly."""
        parts = [_rand((5, 7), 10 + i) for i in range(8)]
        full = tree_sum(parts)
        per = len(parts) // tp
        locals_ = [
            tree_sum(parts[r * per : (r + 1) * per]) for r in range(tp)
        ]
        assert tree_sum(locals_).tobytes() == full.tobytes()

    def test_subtree_aligned_table(self):
        assert subtree_aligned(8, 1)
        assert subtree_aligned(8, 2)
        assert subtree_aligned(8, 4)
        assert subtree_aligned(8, 8)
        assert not subtree_aligned(8, 3)
        assert not subtree_aligned(8, 5)
        assert not subtree_aligned(6, 4)
        assert subtree_aligned(6, 2)

    def test_validate_tp(self):
        validate_tp(1)
        validate_tp(2)
        validate_tp(4)
        with pytest.raises(ValueError, match="aligned subtrees"):
            validate_tp(3)
        with pytest.raises(ValueError, match="tp must be"):
            validate_tp(0)


class TestShardOps:
    def test_col_forward_is_det_matmul(self):
        x = Tensor(_rand((4, 6, 32), 20))
        w = Tensor(_rand((32, 48), 21), requires_grad=True)
        out = col_linear(x, w, column_grid(48, 8))
        assert out.data.tobytes() == det_matmul(x.data, w.data).tobytes()

    def test_row_forward_is_grid_reduction(self):
        grid = column_grid(48, 8)
        x = Tensor(_rand((4, 6, 48), 22))
        w = Tensor(_rand((48, 32), 23), requires_grad=True)
        out = row_linear(x, w, grid)
        parts = [
            det_matmul(
                np.ascontiguousarray(x.data[..., lo:hi]),
                np.ascontiguousarray(w.data[lo:hi, :]),
            )
            for lo, hi in grid
        ]
        assert out.data.tobytes() == tree_sum(parts).tobytes()

    @pytest.mark.parametrize("mode", ["col", "row"])
    def test_gradients_match_reference_matmul(self, mode):
        k, n = (32, 48) if mode == "col" else (48, 32)
        grid = column_grid(n if mode == "col" else k, 8)
        fn = col_linear if mode == "col" else row_linear
        xd, wd = _rand((3, 5, k), 30), _rand((k, n), 31)

        x1, w1 = Tensor(xd, requires_grad=True), Tensor(wd, requires_grad=True)
        fn(x1, w1, grid).sum().backward()
        x2, w2 = Tensor(xd, requires_grad=True), Tensor(wd, requires_grad=True)
        (x2 @ w2).sum().backward()
        np.testing.assert_allclose(x1.grad, x2.grad, rtol=1e-4, atol=1e-4)
        np.testing.assert_allclose(w1.grad, w2.grad, rtol=1e-4, atol=1e-4)

    def test_gradients_invariant_across_chunk_grids(self):
        """Backward through the canonical grid is a fixed function of the
        grid, so every TP degree over it yields bitwise-equal grads."""
        xd, wd = _rand((3, 5, 48), 32), _rand((48, 32), 33)
        grads = []
        for _ in range(2):  # determinism across repeated runs
            x = Tensor(xd, requires_grad=True)
            w = Tensor(wd, requires_grad=True)
            row_linear(x, w, column_grid(48, 8)).sum().backward()
            grads.append((x.grad.tobytes(), w.grad.tobytes()))
        assert grads[0] == grads[1]


def _logits(model, ids):
    with no_grad():
        return model(ids).data


class TestTPEnable:
    def test_parameter_names_unchanged(self, pretrained_model):
        before = [n for n, _ in pretrained_model.named_parameters()]
        ids_before = [id(p) for _, p in pretrained_model.named_parameters()]
        with tp_enable(pretrained_model, tp=2) as state:
            after = [n for n, _ in pretrained_model.named_parameters()]
            ids_after = [id(p) for _, p in pretrained_model.named_parameters()]
            assert after == before
            assert ids_after == ids_before
            assert len(state.linears) == 7 * pretrained_model.num_layers
            assert all(isinstance(l, TPLinear) for l in state.linears)
        # undo restores the plain Linears
        assert not any(
            isinstance(m, TPLinear) for m in pretrained_model.modules()
        )

    def test_layout_invariance_across_tp_degrees(self, pretrained_state):
        """tp=1, tp=2, tp=4 all run the same canonical grid arithmetic,
        so logits are bitwise identical across layouts."""
        ids = np.arange(24, dtype=np.int64).reshape(2, 12) % 32
        outs = []
        for tp in (1, 2, 4):
            model = TransformerLM(small_config())
            model.load_state_dict(pretrained_state)
            model.eval()
            with tp_enable(model, tp=tp):
                outs.append(_logits(model, ids).tobytes())
        assert outs[0] == outs[1] == outs[2]

    def test_grad_path_matches_plain_model_closely(self, pretrained_model):
        """Sharded arithmetic is a different (deterministic) summation
        order than BLAS, so losses match numerically, not bitwise."""
        from repro.tensor import cross_entropy

        ids = np.arange(24, dtype=np.int64).reshape(2, 12) % 32
        targets = (ids + 1) % 32
        ref = cross_entropy(pretrained_model(ids), targets).item()
        with tp_enable(pretrained_model, tp=2):
            got = cross_entropy(pretrained_model(ids), targets).item()
        assert got == pytest.approx(ref, rel=1e-5)

    def test_rejects_non_plain_linear(self, pretrained_model):
        from repro.nn.surgery import swap

        class NotLinear(TransformerLM.__mro__[1]):  # a bare Module
            def forward(self, x):  # pragma: no cover
                return x

        swap(pretrained_model.blocks[0].attn, "q_proj", NotLinear())
        with pytest.raises(ValueError, match="plain Linear"):
            tp_enable(pretrained_model, tp=2)

    def test_rejects_double_enable(self, pretrained_model):
        with tp_enable(pretrained_model, tp=2):
            with pytest.raises(ValueError, match="already sharded"):
                tp_enable(pretrained_model, tp=2)


class TestTPGroup:
    def test_process_path_bitwise_matches_in_process(self, pretrained_state):
        ids = np.arange(24, dtype=np.int64).reshape(2, 12) % 32

        def run(group):
            model = TransformerLM(small_config())
            model.load_state_dict(pretrained_state)
            model.eval()
            with tp_enable(model, tp=2, group=group) as state:
                if group:
                    assert state.group is not None and state.group.can_serve()
                return _logits(model, ids).tobytes()

        assert run(False) == run(True)

    def test_timeout_falls_back_and_counts(self, pretrained_state):
        ids = np.arange(12, dtype=np.int64).reshape(1, 12) % 32
        model = TransformerLM(small_config())
        model.load_state_dict(pretrained_state)
        model.eval()
        with tp_enable(model, tp=2):
            ref = _logits(model, ids).tobytes()
        with use_registry() as reg:
            with tp_enable(
                model, tp=2, group=True, timeout_s=0.0, _test_delay_s=0.5
            ) as state:
                got = _logits(model, ids).tobytes()
                assert state.group is None or not state.group.can_serve()
            fallbacks = reg.counter("dist/fallbacks").value
        assert fallbacks >= 1
        assert got == ref  # fallback path is the same canonical arithmetic

    def test_stale_weights_fall_back(self, pretrained_state):
        ids = np.arange(12, dtype=np.int64).reshape(1, 12) % 32
        model = TransformerLM(small_config())
        model.load_state_dict(pretrained_state)
        model.eval()
        with use_registry() as reg:
            with tp_enable(model, tp=2, group=True) as state:
                assert state.group is not None
                q = model.blocks[0].attn.q_proj
                q.weight.data = q.weight.data * 1.0  # version bump
                got = _logits(model, ids).tobytes()
                assert not state.group.can_serve()
            fallbacks = reg.counter("dist/fallbacks").value
        assert fallbacks >= 1
        with tp_enable(model, tp=2):
            assert _logits(model, ids).tobytes() == got

    def test_overlap_accounting(self, pretrained_state):
        model = TransformerLM(small_config())
        model.load_state_dict(pretrained_state)
        model.eval()
        ids = np.arange(24, dtype=np.int64).reshape(2, 12) % 32
        with use_registry() as reg:
            with tp_enable(model, tp=2, group=True) as state:
                _logits(model, ids)
                group = state.group
                assert group is not None and group.calls > 0
                assert group.transfer_bytes > 0
                assert 0.0 <= group.overlap_fraction <= 1.0
                group.publish()
            snap = reg.snapshot()
        assert snap["counters"]["dist/transfer_bytes"] > 0
        assert "dist/overlap_fraction" in snap["gauges"]

    def test_group_requires_tp_ge_2(self):
        with pytest.raises(ValueError, match="tp >= 2"):
            TPGroup(1)
