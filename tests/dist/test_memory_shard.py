"""Per-stage memory: each worker holds ~1/S of parameters + optimizer
state — the reason sharding fits models one process cannot."""

import numpy as np
import pytest

from repro.adaptive import AdaptiveTuningConfig
from repro.dist import (
    DistConfig,
    PipelineAdaptiveTrainer,
    PipelineRunner,
    canonical_parameters,
)
from repro.nn import TransformerLM

from ..conftest import small_config


def total_param_bytes(runner):
    return sum(
        p.data.nbytes
        for _, p in canonical_parameters(runner.model, runner.exit_heads)
    )


@pytest.mark.parametrize("shards", [2, 3])
def test_stage_bytes_partition_the_model(shards):
    model = TransformerLM(small_config(num_layers=6))
    with PipelineRunner(
        model, DistConfig(shards=shards, serial=True), AdaptiveTuningConfig()
    ) as runner:
        reports = runner.memory_report()
        total = total_param_bytes(runner)
        assert len(reports) == shards
        # owned params partition the canonical set exactly...
        assert sum(r["param_bytes"] for r in reports) == total
        # ...and every stage holds a strict fraction of the whole.
        assert max(r["param_bytes"] for r in reports) < total
        # AdamW: two state floats per param, flat slab or not.
        for r in reports:
            assert r["optimizer_bytes"] == 2 * r["param_bytes"]


def test_process_backend_reports_from_workers(pretrained_model):
    with PipelineRunner(
        pretrained_model, DistConfig(shards=2), AdaptiveTuningConfig()
    ) as runner:
        reports = runner.memory_report()
        assert [r["stage"] for r in reports] == [0, 1]
        assert sum(r["param_bytes"] for r in reports) == total_param_bytes(
            runner
        )


def test_trainer_memory_reports(pretrained_model):
    with PipelineAdaptiveTrainer(
        pretrained_model,
        AdaptiveTuningConfig(window=2),
        DistConfig(shards=2, serial=True),
    ) as trainer:
        stages = trainer.stage_memory_report()
        assert len(stages) == 2
        # the analytic whole-model view matches the plain trainer's shape
        report = trainer.memory_report(4, 16)
        as_dict = report.as_dict()
        assert as_dict["total"] > 0
        assert set(as_dict) >= {"weights", "gradients", "optimizer"}
