"""Sharded serving emits the exact greedy tokens of the single-process
``TransformerLM.generate`` — the serving half of the bitwise contract."""

import numpy as np
import pytest

from repro.data import lm_batches
from repro.dist import DistConfig, PipelineGenerationEngine
from repro.nn import TransformerLM

from ..conftest import small_config

MAX_NEW = 8


def prompts_for(model, corpus, n=3, lens=(5, 8, 11)):
    rng = np.random.default_rng(3)
    out = []
    for i in range(n):
        inputs, _ = next(lm_batches(corpus, 1, lens[i % len(lens)], 1, rng))
        out.append([int(t) for t in inputs[0]])
    return out


def reference_tokens(model, prompts):
    return [model.generate(p, MAX_NEW, greedy=True) for p in prompts]


@pytest.mark.parametrize("dist,backend", [
    (DistConfig(shards=2, serial=True), "serial"),
    (DistConfig(shards=2), "process"),
    (DistConfig(shards=3), "process"),
])
def test_sharded_tokens_match_generate(
    pretrained_model, adapt_corpus, dist, backend
):
    prompts = prompts_for(pretrained_model, adapt_corpus)
    expected = reference_tokens(pretrained_model, prompts)
    with PipelineGenerationEngine(pretrained_model, dist) as engine:
        assert engine.runner.backend == backend
        got = engine.generate_batch(prompts, MAX_NEW)
    assert got == expected


def test_single_prompt_and_reuse(pretrained_model, adapt_corpus):
    """One engine serves several independent calls with fresh caches."""
    prompts = prompts_for(pretrained_model, adapt_corpus, n=2)
    expected = reference_tokens(pretrained_model, prompts)
    with PipelineGenerationEngine(
        pretrained_model, DistConfig(shards=2)
    ) as engine:
        assert engine.generate(prompts[0], MAX_NEW) == expected[0]
        assert engine.generate(prompts[1], MAX_NEW) == expected[1]
        # repeat: per-request KV state must not leak between calls
        assert engine.generate(prompts[0], MAX_NEW) == expected[0]


def test_sampled_decoding_rejected(pretrained_model):
    with PipelineGenerationEngine(
        pretrained_model, DistConfig(shards=2, serial=True)
    ) as engine:
        with pytest.raises(ValueError, match="greedy"):
            engine.generate_batch([[1, 2, 3]], 4, greedy=False)


def test_untied_head_serving(adapt_corpus):
    model = TransformerLM(small_config(num_layers=4, tie_embeddings=False))
    prompts = prompts_for(model, adapt_corpus, n=2)
    expected = reference_tokens(model, prompts)
    with PipelineGenerationEngine(model, DistConfig(shards=2)) as engine:
        assert engine.generate_batch(prompts, MAX_NEW) == expected
