"""Backend selection, graceful fallback, config validation, telemetry."""

import numpy as np
import pytest

from repro.adaptive import AdaptiveTuningConfig
from repro.data import lm_batches
from repro.dist import (
    DistConfig,
    PipelineAdaptiveTrainer,
    PipelineRunner,
    validate_tuning_config,
)
from repro.nn import TransformerLM
from repro.obs import use_registry

from ..conftest import small_config


def make_model(state=None):
    model = TransformerLM(small_config())
    if state is not None:
        model.load_state_dict(state)
    return model


def data(corpus, n=3):
    return list(lm_batches(corpus, 4, 16, n, np.random.default_rng(0)))


class TestFallback:
    def test_bad_start_method_falls_back_to_serial(
        self, pretrained_state, adapt_corpus
    ):
        """An unavailable process backend degrades to the serial
        reference path — visibly (dist/fallbacks) and bit-identically."""
        state = make_model(pretrained_state).state_dict()
        cfg = AdaptiveTuningConfig(window=2, seed=0)
        batches = data(adapt_corpus)

        def run(dist):
            with use_registry() as reg:
                with PipelineAdaptiveTrainer(
                    make_model(state), cfg, dist
                ) as trainer:
                    losses = [
                        trainer.train_step(i, t).loss for i, t in batches
                    ]
                    backend = trainer.runner.backend
                fallbacks = reg.counter("dist/fallbacks").value
            return losses, backend, fallbacks

        ref, ref_backend, _ = run(DistConfig(shards=2, serial=True))
        got, backend, fallbacks = run(
            DistConfig(shards=2, start_method="no-such-start-method")
        )
        assert ref_backend == "serial"
        assert backend == "serial"
        assert fallbacks == 1
        assert got == ref


class TestValidation:
    def test_rejects_full_tape(self):
        with pytest.raises(ValueError, match="fast_path"):
            validate_tuning_config(AdaptiveTuningConfig(fast_path=False))

    def test_rejects_window_scoped_optimizer(self):
        with pytest.raises(ValueError, match="optimizer_scope"):
            validate_tuning_config(
                AdaptiveTuningConfig(optimizer_scope="window")
            )

    def test_rejects_checkpointing(self):
        with pytest.raises(ValueError, match="checkpoint_blocks"):
            validate_tuning_config(
                AdaptiveTuningConfig(checkpoint_blocks=True)
            )

    def test_rejects_dropout(self):
        model = TransformerLM(small_config(num_layers=4, dropout=0.1))
        with pytest.raises(ValueError, match="dropout"):
            PipelineRunner(
                model, DistConfig(shards=2, serial=True),
                AdaptiveTuningConfig(),
            )

    def test_rejects_more_shards_than_blocks(self):
        model = TransformerLM(small_config(num_layers=4))
        with pytest.raises(ValueError, match="shards"):
            PipelineRunner(model, DistConfig(shards=5, serial=True))

    def test_rejects_bad_dist_config(self):
        with pytest.raises(ValueError):
            DistConfig(shards=0)
        with pytest.raises(ValueError):
            DistConfig(micro_batches=0)

    def test_rejects_micro_batches_beyond_batch(
        self, pretrained_state, adapt_corpus
    ):
        trainer = PipelineAdaptiveTrainer(
            make_model(pretrained_state),
            AdaptiveTuningConfig(window=2),
            DistConfig(shards=2, micro_batches=5, serial=True),
        )
        with trainer:
            (inputs, targets), = data(adapt_corpus, n=1)
            with pytest.raises(ValueError, match="micro_batches"):
                trainer.train_step(inputs, targets)


class TestTelemetry:
    def test_dist_counters_and_rows(self, pretrained_state, adapt_corpus):
        state = make_model(pretrained_state).state_dict()
        with use_registry() as reg:
            with PipelineAdaptiveTrainer(
                make_model(state),
                AdaptiveTuningConfig(window=2),
                DistConfig(shards=2, micro_batches=2),
            ) as trainer:
                for inputs, targets in data(adapt_corpus):
                    trainer.train_step(inputs, targets)
            snap = reg.snapshot()
        assert snap["counters"]["dist/steps"] == 3
        assert snap["counters"]["adapt/iterations"] == 3
        assert 0.0 <= snap["gauges"]["dist/bubble_fraction"] <= 1.0
        iters = snap["tables"]["dist/iter"]
        assert len(iters) == 3
        assert all(row["shards"] == 2 for row in iters)
        stages = snap["tables"]["dist/stage"]
        assert [row["stage"] for row in stages] == [0, 1]
        assert sum(row["blocks"] for row in stages) == 6
        if snap["counters"].get("dist/fallbacks", 0) == 0:
            # process backend actually moved activations over queues
            assert snap["counters"]["dist/transfer_bytes"] > 0
