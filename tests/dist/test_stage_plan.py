"""Stage planning: the exact min-max DP, spec parsing, slice awareness."""

import itertools

import numpy as np
import pytest

from repro.data import lm_batches
from repro.dist import StagePlan, model_block_costs, plan_for_model, plan_stages
from repro.nn import TransformerLM, rotate_and_slice
from repro.parallel import derive_seed

from ..conftest import small_config


def brute_force_minmax(costs, num_stages):
    """Minimal max-stage-cost over every contiguous partition."""
    L = len(costs)
    best = float("inf")
    for interior in itertools.combinations(range(1, L), num_stages - 1):
        bounds = (0, *interior, L)
        worst = max(
            sum(costs[bounds[s]:bounds[s + 1]])
            for s in range(num_stages)
        )
        best = min(best, worst)
    return best


class TestPlanStages:
    def test_uniform_costs_split_evenly(self):
        plan = plan_stages([1] * 8, 2)
        assert plan.boundaries == (0, 4, 8)
        assert plan.num_stages == 2
        assert plan.stage_cost(0) == plan.stage_cost(1) == 4

    def test_minimizes_max_stage_cost(self):
        plan = plan_stages([10, 1, 1, 1, 1, 10], 2)
        assert plan.boundaries == (0, 3, 6)
        assert max(plan.stage_cost(s) for s in range(2)) == 12

    def test_dp_matches_brute_force(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            L = int(rng.integers(2, 9))
            S = int(rng.integers(1, L + 1))
            costs = [int(c) for c in rng.integers(1, 50, size=L)]
            plan = plan_stages(costs, S)
            got = max(plan.stage_cost(s) for s in range(S))
            assert got == brute_force_minmax(costs, S)

    def test_partition_is_contiguous_and_complete(self):
        plan = plan_stages([3, 1, 4, 1, 5, 9, 2, 6], 3)
        covered = []
        for s in range(plan.num_stages):
            lo, hi = plan.blocks(s)
            covered.extend(range(lo, hi))
        assert covered == list(range(8))

    def test_too_many_stages_rejected(self):
        with pytest.raises(ValueError):
            plan_stages([1, 1], 3)
        with pytest.raises(ValueError):
            plan_stages([1, 1], 0)


class TestStagePlan:
    def test_parse_round_trip(self):
        plan = StagePlan.parse("3,6", 8)
        assert plan.boundaries == (0, 3, 6, 8)
        assert plan.to_spec() == "3,6"
        assert StagePlan.parse(plan.to_spec(), 8) == StagePlan((0, 3, 6, 8))

    def test_parse_empty_spec_is_single_stage(self):
        plan = StagePlan.parse("", 4)
        assert plan.num_stages == 1
        assert plan.blocks(0) == (0, 4)

    def test_parse_bad_specs(self):
        with pytest.raises(ValueError):
            StagePlan.parse("x,y", 8)
        with pytest.raises(ValueError):
            StagePlan.parse("6,3", 8)  # not increasing
        with pytest.raises(ValueError):
            StagePlan.parse("9", 8)  # beyond num_layers

    def test_invalid_boundaries_rejected(self):
        with pytest.raises(ValueError):
            StagePlan((1, 4))  # must start at 0
        with pytest.raises(ValueError):
            StagePlan((0,))  # no stages

    def test_stage_of_block(self):
        plan = StagePlan((0, 3, 6, 8))
        assert [plan.stage_of_block(b) for b in range(8)] == [
            0, 0, 0, 1, 1, 1, 2, 2,
        ]
        with pytest.raises(ValueError):
            plan.stage_of_block(8)

    def test_stage_seed_mirrors_parallel_contract(self):
        plan = StagePlan((0, 2, 4))
        for s in range(plan.num_stages):
            assert plan.stage_seed(7, s) == derive_seed(7, s)


class TestModelAwarePlanning:
    def test_sliced_model_reports_lower_costs(self, adapt_corpus):
        model = TransformerLM(small_config(num_layers=4))
        before = model_block_costs(model)
        rng = np.random.default_rng(0)
        calib, _ = next(lm_batches(adapt_corpus, 4, 16, 1, rng))
        rotate_and_slice(model, calib, 0.5)
        after = model_block_costs(model)
        assert sum(after) < sum(before)

    def test_manual_spec_wins_and_validates_count(self):
        model = TransformerLM(small_config(num_layers=6))
        plan = plan_for_model(model, 2, spec="2")
        assert plan.boundaries == (0, 2, 6)
        with pytest.raises(ValueError):
            plan_for_model(model, 3, spec="2")
