"""Tests for quantization kernels and calibration."""

import numpy as np
import pytest

from repro.quant import (
    QuantSpec,
    calibrate,
    dequantize,
    fake_quantize,
    minmax_range,
    percentile_range,
    quantization_mse,
    quantize,
    scale_zero_from_range,
)


def weights(seed=0, shape=(64, 32)):
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


class TestQuantSpec:
    def test_symmetric_levels(self):
        spec = QuantSpec(bits=4, symmetric=True)
        assert spec.qmin == -7
        assert spec.qmax == 7

    def test_affine_levels(self):
        spec = QuantSpec(bits=4, symmetric=False)
        assert spec.qmin == 0
        assert spec.qmax == 15
        assert spec.num_levels == 16

    def test_unsupported_bits_raises(self):
        with pytest.raises(ValueError):
            QuantSpec(bits=5)

    def test_with_bits(self):
        spec = QuantSpec(bits=8).with_bits(4)
        assert spec.bits == 4
        assert spec.per_channel


class TestRanges:
    def test_minmax_per_tensor(self):
        spec = QuantSpec(bits=8, per_channel=False)
        w = weights()
        lo, hi = minmax_range(w, spec)
        assert lo.size == 1 and hi.size == 1
        assert np.isclose(lo, w.min())
        assert np.isclose(hi, w.max())

    def test_minmax_per_channel_shape(self):
        spec = QuantSpec(bits=8, per_channel=True, channel_axis=1)
        lo, hi = minmax_range(weights(), spec)
        assert lo.shape == (1, 32)

    def test_percentile_tighter_than_minmax(self):
        w = weights()
        w[0, 0] = 100.0  # outlier
        spec = QuantSpec(bits=8, per_channel=False)
        _, hi_mm = minmax_range(w, spec)
        _, hi_pct = percentile_range(w, spec, pct=99.0)
        assert hi_pct < hi_mm

    def test_percentile_invalid_raises(self):
        with pytest.raises(ValueError):
            percentile_range(weights(), QuantSpec(bits=8), pct=40.0)


class TestQuantizeDequantize:
    def test_roundtrip_error_bounded_by_scale(self):
        w = weights()
        spec = QuantSpec(bits=8, per_channel=False)
        scale, zero = calibrate(w, spec)
        recon = dequantize(quantize(w, scale, zero, spec), scale, zero)
        assert np.abs(w - recon).max() <= float(scale.ravel()[0]) * 0.5 + 1e-6

    def test_integers_within_grid(self):
        w = weights()
        spec = QuantSpec(bits=4, per_channel=False)
        scale, zero = calibrate(w, spec)
        q = quantize(w, scale, zero, spec)
        assert q.min() >= spec.qmin
        assert q.max() <= spec.qmax

    def test_zero_maps_to_zero_symmetric(self):
        spec = QuantSpec(bits=8, symmetric=True, per_channel=False)
        w = weights()
        scale, zero = calibrate(w, spec)
        q = quantize(np.zeros(4, dtype=np.float32), scale, zero, spec)
        assert np.all(dequantize(q, scale, zero) == 0.0)

    def test_constant_tensor_safe(self):
        w = np.zeros((8, 8), dtype=np.float32)
        spec = QuantSpec(bits=4, per_channel=False)
        out = fake_quantize(w, spec)
        assert np.all(np.isfinite(out))
        assert np.allclose(out, 0.0)

    def test_affine_handles_asymmetric_data(self):
        w = np.abs(weights()) + 1.0  # strictly positive
        sym = quantization_mse(w, QuantSpec(bits=4, symmetric=True, per_channel=False))
        aff = quantization_mse(w, QuantSpec(bits=4, symmetric=False, per_channel=False))
        assert aff < sym


class TestFakeQuantize:
    def test_16bit_lossless(self):
        w = weights()
        assert np.array_equal(fake_quantize(w, QuantSpec(bits=16)), w)

    def test_error_decreases_with_bits(self):
        w = weights()
        errs = [
            quantization_mse(w, QuantSpec(bits=b, per_channel=False))
            for b in (2, 4, 8)
        ]
        assert errs[0] > errs[1] > errs[2]

    def test_per_channel_beats_per_tensor_on_varied_scales(self):
        rng = np.random.default_rng(0)
        w = rng.standard_normal((32, 16)).astype(np.float32)
        w[:, :8] *= 20.0  # widely different channel scales
        err_pt = quantization_mse(w, QuantSpec(bits=4, per_channel=False))
        err_pc = quantization_mse(w, QuantSpec(bits=4, per_channel=True, channel_axis=1))
        assert err_pc < err_pt

    def test_explicit_scale_zero_used(self):
        w = weights()
        spec = QuantSpec(bits=8, per_channel=False)
        scale = np.array([[0.1]], dtype=np.float32)
        zero = np.array([[0.0]], dtype=np.float32)
        out = fake_quantize(w, spec, scale=scale, zero=zero)
        assert np.allclose(out % 0.1, 0.0, atol=1e-4) or True  # grid-aligned
        assert np.abs(out).max() <= 0.1 * spec.qmax + 1e-6

    def test_idempotent(self):
        w = weights()
        spec = QuantSpec(bits=4, per_channel=False)
        once = fake_quantize(w, spec)
        twice = fake_quantize(once, spec)
        assert np.allclose(once, twice, atol=1e-6)


class TestCalibrationMethods:
    def test_mse_beats_minmax_with_outliers(self):
        rng = np.random.default_rng(0)
        w = rng.standard_normal(4096).astype(np.float32)
        w[:4] = 10.0  # outliers blow up the minmax scale
        spec = QuantSpec(bits=4, per_channel=False)
        err_minmax = quantization_mse(w, spec, method="minmax")
        err_mse = quantization_mse(w, spec, method="mse")
        assert err_mse < err_minmax

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            calibrate(weights(), QuantSpec(bits=8), method="bogus")

    def test_scale_zero_from_degenerate_range(self):
        spec = QuantSpec(bits=8, per_channel=False)
        scale, zero = scale_zero_from_range(
            np.zeros((1, 1), dtype=np.float32), np.zeros((1, 1), dtype=np.float32), spec
        )
        assert np.all(scale > 0)
