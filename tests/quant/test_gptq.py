"""Tests for GPTQ-style error-compensated quantization."""

import numpy as np
import pytest

from repro.quant import (
    QuantSpec,
    fake_quantize,
    gptq_quantize,
    gptq_quantize_linear,
    input_hessian,
    reconstruction_error,
)


def setup(seed=0, n=256, din=32, dout=16):
    rng = np.random.default_rng(seed)
    weight = rng.standard_normal((din, dout)).astype(np.float32)
    # Correlated inputs make error compensation matter.
    base = rng.standard_normal((n, din // 2)).astype(np.float32)
    inputs = np.concatenate([base, base + 0.1 * rng.standard_normal(
        (n, din - din // 2)).astype(np.float32)], axis=1)
    return weight, inputs


class TestInputHessian:
    def test_shape_and_symmetry(self):
        _, inputs = setup()
        h = input_hessian(inputs)
        assert h.shape == (32, 32)
        assert np.allclose(h, h.T, atol=1e-8)

    def test_positive_definite_with_damping(self):
        _, inputs = setup()
        h = input_hessian(inputs, damping=0.01)
        eigvals = np.linalg.eigvalsh(h)
        assert eigvals.min() > 0

    def test_3d_inputs_flattened(self):
        _, inputs = setup()
        h2 = input_hessian(inputs)
        h3 = input_hessian(inputs.reshape(16, -1, 32))
        assert np.allclose(h2, h3)


class TestGPTQQuantize:
    def test_output_on_grid(self):
        weight, inputs = setup()
        spec = QuantSpec(bits=4)
        q, deq = gptq_quantize(weight, inputs, spec)
        assert q.min() >= spec.qmin and q.max() <= spec.qmax
        assert deq.shape == weight.shape

    def test_16bit_identity(self):
        weight, inputs = setup()
        _, deq = gptq_quantize(weight, inputs, QuantSpec(bits=16))
        assert np.array_equal(deq, weight)

    def test_shape_validation(self):
        weight, inputs = setup()
        with pytest.raises(ValueError):
            gptq_quantize(weight[:, 0], inputs, QuantSpec(bits=4))
        with pytest.raises(ValueError):
            gptq_quantize(weight, inputs[:, :8], QuantSpec(bits=4))

    @pytest.mark.parametrize("bits", [2, 3, 4])
    def test_beats_round_to_nearest_on_output_error(self, bits):
        """The whole point: lower ||XW - XWq|| than naive rounding."""
        weight, inputs = setup()
        spec = QuantSpec(bits=bits)
        _, gptq_deq = gptq_quantize(weight, inputs, spec)
        rtn_deq = fake_quantize(weight, QuantSpec(bits=bits, per_channel=True,
                                                  channel_axis=1))
        err_gptq = reconstruction_error(weight, gptq_deq, inputs)
        err_rtn = reconstruction_error(weight, rtn_deq, inputs)
        assert err_gptq < err_rtn

    def test_deterministic(self):
        weight, inputs = setup()
        _, a = gptq_quantize(weight, inputs, QuantSpec(bits=4))
        _, b = gptq_quantize(weight, inputs, QuantSpec(bits=4))
        assert np.array_equal(a, b)


class TestGPTQLinear:
    def test_in_place_quantization(self):
        from repro.nn import Linear

        weight, inputs = setup()
        layer = Linear(32, 16, rng=np.random.default_rng(0))
        before = layer.weight.data.copy()
        err = gptq_quantize_linear(layer, inputs, bits=4)
        assert err >= 0
        assert not np.array_equal(layer.weight.data, before)
        # Weights now sit on a 4-bit per-channel grid.
        for col in range(16):
            assert len(np.unique(layer.weight.data[:, col])) <= 15

    def test_model_quality_better_than_rtn_at_2bit(self, pretrained_model,
                                                   pretrain_corpus):
        """End-to-end: GPTQ at 2 bits on one block's MLP beats RTN."""
        from repro.data import lm_batches
        from repro.eval import model_perplexity
        from repro.tensor import no_grad

        rng = np.random.default_rng(0)
        ids, _ = next(lm_batches(pretrain_corpus, 8, 24, 1, rng))
        # Capture the inputs feeding block 3's MLP down projection.
        block = pretrained_model.blocks[3]
        with no_grad():
            h = pretrained_model.embed_tokens(ids)
            h = pretrained_model.run_blocks(h, 0, 3)
            from repro.tensor import silu

            x = block.mlp_norm(h + block.attn(block.attn_norm(h)))
            mlp_in = (silu(block.mlp.gate_proj(x)) * block.mlp.up_proj(x)).data

        original = block.mlp.down_proj.weight.data.copy()

        gptq_quantize_linear(block.mlp.down_proj, mlp_in, bits=2)
        ppl_gptq = model_perplexity(pretrained_model, pretrain_corpus,
                                    num_batches=2)
        block.mlp.down_proj.weight.data = fake_quantize(
            original, QuantSpec(bits=2, per_channel=True, channel_axis=1)
        )
        ppl_rtn = model_perplexity(pretrained_model, pretrain_corpus,
                                   num_batches=2)
        block.mlp.down_proj.weight.data = original
        assert ppl_gptq <= ppl_rtn * 1.02
