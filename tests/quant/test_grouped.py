"""Tests for per-group quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import QuantSpec, fake_quantize, fake_quantize_grouped


def weights(seed=0, shape=(64, 16)):
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


SPEC4 = QuantSpec(bits=4, per_channel=False)


class TestGroupedQuantization:
    def test_shape_preserved(self):
        w = weights()
        out = fake_quantize_grouped(w, SPEC4, group_size=16, axis=0)
        assert out.shape == w.shape

    def test_16bit_passthrough(self):
        w = weights()
        out = fake_quantize_grouped(w, QuantSpec(bits=16), group_size=8)
        assert np.array_equal(out, w)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            fake_quantize_grouped(weights(shape=(60, 8)), SPEC4, group_size=16)

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            fake_quantize_grouped(weights(), SPEC4, group_size=0)

    def test_unsupported_method(self):
        with pytest.raises(ValueError):
            fake_quantize_grouped(weights(), SPEC4, group_size=16, method="mse")

    def test_finer_groups_lower_error(self):
        """Smaller groups adapt scales locally -> monotonically less MSE."""
        rng = np.random.default_rng(0)
        w = rng.standard_normal((128, 8)).astype(np.float32)
        w[:32] *= 10.0  # scale variation along the grouped axis
        errs = []
        for gs in (128, 32, 8):
            recon = fake_quantize_grouped(w, SPEC4, group_size=gs, axis=0)
            errs.append(float(((w - recon) ** 2).mean()))
        assert errs[0] >= errs[1] >= errs[2]

    def test_group_size_full_matches_per_column(self):
        """One group spanning the axis == per-channel along the other axis."""
        w = weights(shape=(32, 4))
        grouped = fake_quantize_grouped(w, SPEC4, group_size=32, axis=0)
        per_channel = fake_quantize(
            w, QuantSpec(bits=4, per_channel=True, channel_axis=1)
        )
        assert np.allclose(grouped, per_channel, atol=1e-6)

    def test_axis1_grouping(self):
        w = weights(shape=(8, 64))
        out = fake_quantize_grouped(w, SPEC4, group_size=16, axis=1)
        assert out.shape == w.shape

    def test_percentile_method(self):
        w = weights()
        out = fake_quantize_grouped(w, SPEC4, group_size=16, method="percentile")
        assert np.all(np.isfinite(out))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100), bits=st.sampled_from([2, 4, 8]))
    def test_property_error_bounded_and_idempotent(self, seed, bits):
        w = weights(seed=seed, shape=(32, 8))
        spec = QuantSpec(bits=bits, per_channel=False)
        once = fake_quantize_grouped(w, spec, group_size=8, axis=0)
        twice = fake_quantize_grouped(once, spec, group_size=8, axis=0)
        assert np.allclose(once, twice, atol=1e-5)
        # Error never exceeds the trivial all-zeros reconstruction.
        assert ((w - once) ** 2).mean() <= (w**2).mean() + 1e-6
