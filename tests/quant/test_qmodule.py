"""Tests for STE fake-quant modules (QuantLinear)."""

import numpy as np
import pytest

from repro.nn import Linear
from repro.quant import QuantLinear, QuantSpec, fake_quant_ste, quantize_linear
from repro.tensor import Tensor


def make_linear(seed=0, din=16, dout=8):
    return Linear(din, dout, rng=np.random.default_rng(seed))


class TestFakeQuantSTE:
    def test_forward_is_quantized(self):
        x = Tensor(np.random.default_rng(0).standard_normal(100), requires_grad=True)
        out = fake_quant_ste(x, QuantSpec(bits=2, per_channel=False))
        assert len(np.unique(out.data)) <= 4  # 2-bit grid

    def test_backward_identity_in_range(self):
        x = Tensor(np.linspace(-1, 1, 11).astype(np.float32), requires_grad=True)
        out = fake_quant_ste(x, QuantSpec(bits=8, per_channel=False))
        out.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_16bit_passthrough(self):
        x = Tensor(np.ones(4), requires_grad=True)
        assert fake_quant_ste(x, QuantSpec(bits=16)) is x


class TestQuantLinear:
    def test_matches_linear_at_high_bits(self):
        lin = make_linear()
        qlin = quantize_linear(lin, bits=8)
        x = Tensor(np.random.default_rng(1).standard_normal((4, 16)))
        assert np.allclose(qlin(x).data, lin(x).data, atol=0.1)

    def test_low_bits_add_noise(self):
        lin = make_linear()
        qlin = quantize_linear(lin, bits=2)
        x = Tensor(np.random.default_rng(1).standard_normal((4, 16)))
        assert not np.allclose(qlin(x).data, lin(x).data, atol=1e-3)

    def test_master_weights_receive_grads(self):
        qlin = quantize_linear(make_linear(), bits=4)
        x = Tensor(np.random.default_rng(1).standard_normal((4, 16)))
        qlin(x).sum().backward()
        assert qlin.inner.weight.grad is not None
        assert qlin.inner.bias.grad is not None

    def test_training_reduces_loss_despite_quant(self):
        """STE lets a 4-bit layer fit a simple regression target."""
        from repro.nn import Adam

        rng = np.random.default_rng(0)
        lin = make_linear(din=8, dout=1)
        qlin = quantize_linear(lin, bits=4)
        x = rng.standard_normal((64, 8)).astype(np.float32)
        true_w = rng.standard_normal((8, 1)).astype(np.float32)
        y = x @ true_w
        opt = Adam(qlin.parameters(), lr=0.01)
        losses = []
        for _ in range(150):
            pred = qlin(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2).mean()
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.3

    def test_properties_proxied(self):
        qlin = quantize_linear(make_linear(), bits=4)
        assert qlin.in_features == 16
        assert qlin.out_features == 8
        assert qlin.weight is qlin.inner.weight

    def test_activation_quant_dynamic(self):
        lin = make_linear()
        qlin = quantize_linear(lin, bits=8, act_bits=4)
        x = Tensor(np.random.default_rng(1).standard_normal((4, 16)))
        out = qlin(x)
        assert out.shape == (4, 8)

    def test_activation_calibration_freezes_ranges(self):
        lin = make_linear()
        qlin = quantize_linear(lin, bits=8, act_bits=8)
        sample = np.random.default_rng(2).standard_normal((32, 16)).astype(np.float32)
        qlin.calibrate_activations(sample)
        assert qlin._act_scale is not None
        out = qlin(Tensor(sample[:4]))
        assert out.shape == (4, 8)

    def test_calibrate_without_act_spec_raises(self):
        qlin = quantize_linear(make_linear(), bits=8)
        with pytest.raises(ValueError):
            qlin.calibrate_activations(np.zeros((2, 16), dtype=np.float32))

    def test_params_visible_to_optimizer(self):
        qlin = quantize_linear(make_linear(), bits=4)
        names = [n for n, _ in qlin.named_parameters()]
        assert "inner.weight" in names
