"""Tests for grouped-query attention (GQA)."""

import numpy as np
import pytest

from repro.nn import KVCache, MultiHeadAttention, TransformerConfig, TransformerLM
from repro.tensor import Tensor, cross_entropy, no_grad


def make_attn(num_kv_heads, dim=32, heads=4, seed=0):
    return MultiHeadAttention(
        dim, heads, max_len=16, rng=np.random.default_rng(seed),
        num_kv_heads=num_kv_heads,
    )


class TestGQAAttention:
    def test_kv_projection_narrower(self):
        attn = make_attn(num_kv_heads=2)
        assert attn.k_proj.out_features == 16  # 2 heads * head_dim 8
        assert attn.q_proj.out_features == 32

    def test_invalid_grouping(self):
        with pytest.raises(ValueError):
            make_attn(num_kv_heads=3)

    def test_default_is_mha(self):
        attn = make_attn(num_kv_heads=None)
        assert attn.num_kv_heads == attn.num_heads

    def test_forward_shape(self):
        attn = make_attn(num_kv_heads=2)
        out = attn(Tensor(np.random.default_rng(0).standard_normal((2, 8, 32))))
        assert out.shape == (2, 8, 32)

    def test_causality_preserved(self):
        attn = make_attn(num_kv_heads=1)
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 8, 32)).astype(np.float32)
        out1 = attn(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 6] += 5.0
        out2 = attn(Tensor(x2)).data
        assert np.allclose(out1[0, :6], out2[0, :6], atol=1e-5)

    def test_gradients_flow(self):
        attn = make_attn(num_kv_heads=2)
        x = Tensor(np.random.default_rng(0).standard_normal((1, 4, 32)),
                   requires_grad=True)
        attn(x).sum().backward()
        assert attn.k_proj.weight.grad is not None
        assert x.grad is not None

    def test_kv_cache_matches_full_forward(self):
        attn = make_attn(num_kv_heads=2)
        rng = np.random.default_rng(2)
        x = rng.standard_normal((1, 6, 32)).astype(np.float32)
        with no_grad():
            full = attn(Tensor(x)).data
            cache = KVCache()
            a = attn(Tensor(x[:, :3]), cache=cache).data
            b = attn(Tensor(x[:, 3:]), cache=cache).data
        assert np.allclose(full[:, :3], a, atol=1e-4)
        assert np.allclose(full[:, 3:], b, atol=1e-4)

    def test_cache_stores_kv_layout(self):
        attn = make_attn(num_kv_heads=2)
        cache = KVCache()
        with no_grad():
            attn(Tensor(np.zeros((1, 4, 32), dtype=np.float32)), cache=cache)
        assert cache.k.shape[1] == 2  # kv heads, not query heads

    def test_mqa_extreme(self):
        """num_kv_heads=1 is multi-query attention."""
        attn = make_attn(num_kv_heads=1)
        out = attn(Tensor(np.random.default_rng(0).standard_normal((2, 5, 32))))
        assert out.shape == (2, 5, 32)


class TestGQATransformer:
    def config(self):
        return TransformerConfig(
            vocab_size=32, dim=32, num_layers=2, num_heads=4,
            num_kv_heads=2, max_len=32, seed=0,
        )

    def test_kv_dim_resolution(self):
        assert self.config().resolved_kv_dim() == 16
        dense = TransformerConfig(vocab_size=32, dim=32, num_heads=4)
        assert dense.resolved_kv_dim() == 32

    def test_model_trains(self):
        from repro.nn import AdamW

        model = TransformerLM(self.config())
        ids = np.random.default_rng(0).integers(0, 32, (4, 12))
        opt = AdamW(model.parameters(), lr=3e-3)
        losses = []
        for _ in range(15):
            loss = cross_entropy(model(ids[:, :-1]), ids[:, 1:])
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_generation_with_cache(self):
        model = TransformerLM(self.config())
        toks = model.generate([1, 2, 3], 4, greedy=True)
        assert len(toks) == 4

    def test_block_param_count_matches(self):
        from repro.eval import block_param_count

        model = TransformerLM(self.config())
        actual = sum(p.size for _, p in model.blocks[0].named_parameters())
        assert block_param_count(self.config()) == actual

    def test_gqa_workload_cheaper(self):
        from repro.hw import total_macs, tuning_iteration_workload

        gqa_cfg = self.config()
        mha_cfg = TransformerConfig(
            vocab_size=32, dim=32, num_layers=2, num_heads=4, max_len=32
        )
        gqa = total_macs(tuning_iteration_workload(gqa_cfg, 2, 8, 2, 0))
        mha = total_macs(tuning_iteration_workload(mha_cfg, 2, 8, 2, 0))
        assert gqa < mha
