"""The model-surgery engine: resolve, find, swap, wrap, restore."""

import numpy as np
import pytest

from repro.nn import Linear, TransformerConfig, TransformerLM, surgery
from repro.nn.transforms import PruneMask, TransformedLinear


def small_model(seed=0):
    cfg = TransformerConfig(vocab_size=16, dim=16, num_layers=2, num_heads=2,
                            max_len=16, seed=seed)
    return TransformerLM(cfg)


class TestResolve:
    def test_dotted_path(self):
        model = small_model()
        site = surgery.resolve(model, "blocks.0.attn.q_proj")
        assert site.module is model.blocks[0].attn.q_proj
        assert site.attr == "q_proj"
        assert site.path == "blocks.0.attn.q_proj"

    def test_module_list_index(self):
        model = small_model()
        site = surgery.resolve(model, "blocks.1")
        assert site.module is model.blocks[1]
        # getattr(parent, "1") would fail; _modules access must not.
        assert site.attr == "1"

    def test_missing_path_raises(self):
        model = small_model()
        with pytest.raises(KeyError):
            surgery.resolve(model, "blocks.0.attn.nope")

    def test_get_module(self):
        model = small_model()
        assert surgery.get_module(model, "blocks.0.mlp.up_proj") is (
            model.blocks[0].mlp.up_proj
        )


class TestFindSites:
    def test_by_predicate(self):
        model = small_model()
        sites = surgery.find_sites(
            model, predicate=lambda path, m: isinstance(m, Linear)
        )
        assert len(sites) >= 2 * 7  # 7 projections per block
        assert all(isinstance(s.module, Linear) for s in sites)
        assert all(surgery.get_module(model, s.path) is s.module for s in sites)

    def test_exactly_one_selector(self):
        model = small_model()
        with pytest.raises(ValueError):
            surgery.find_sites(model)
        with pytest.raises(ValueError):
            surgery.find_sites(
                model, paths=["blocks.0"], predicate=lambda p, m: True
            )


class TestSwapRestore:
    def test_swap_returns_identical_original(self):
        model = small_model()
        site = surgery.resolve(model, "blocks.0.attn.q_proj")
        original = site.module
        replacement = TransformedLinear(original)
        undo = surgery.swap(site.parent, site.attr, replacement)
        assert model.blocks[0].attn.q_proj is replacement
        surgery.restore([undo])
        # Identity, not equality: the exact original object comes back.
        assert model.blocks[0].attn.q_proj is original

    def test_restore_plays_backwards(self):
        model = small_model()
        site = surgery.resolve(model, "blocks.0.attn.q_proj")
        original = site.module
        first = TransformedLinear(original)
        second = TransformedLinear(original)
        u1 = surgery.swap(site.parent, site.attr, first)
        u2 = surgery.swap(site.parent, site.attr, second)
        surgery.restore([u1, u2])  # reversed internally: u2 then u1
        assert model.blocks[0].attn.q_proj is original

    def test_swap_module_list_slot(self):
        model = small_model()
        original = model.blocks[0]
        undo = surgery.swap(model.blocks, "0", model.blocks[1])
        assert model.blocks[0] is model.blocks[1]
        assert model.blocks._modules["0"] is model.blocks._modules["1"]
        surgery.restore([undo])
        assert model.blocks[0] is original


class TestWrap:
    def test_wrap_and_unwrap_rule(self):
        model = small_model()
        paths = ["blocks.0.attn.q_proj", "blocks.1.attn.q_proj"]

        def build(inner, site):
            mask = np.ones_like(inner.weight.data)
            return TransformedLinear(inner, [PruneMask(mask)])

        undo = surgery.wrap(model, build, paths=paths)
        wrapped = surgery.get_module(model, paths[0])
        assert isinstance(wrapped, TransformedLinear)

        # Re-wrapping with unwrap= extracts .inner instead of nesting.
        undo2 = surgery.wrap(model, build, paths=paths,
                             unwrap=(TransformedLinear,))
        rewrapped = surgery.get_module(model, paths[0])
        assert isinstance(rewrapped, TransformedLinear)
        assert not isinstance(rewrapped.inner, TransformedLinear)
        surgery.restore(undo2)
        surgery.restore(undo)
        assert isinstance(surgery.get_module(model, paths[0]), Linear)

    def test_applied_context_restores_on_error(self):
        model = small_model()
        original = model.blocks[0].attn.q_proj

        def build(inner, site):
            return TransformedLinear(inner)

        with pytest.raises(RuntimeError):
            with surgery.applied(model, build,
                                 paths=["blocks.0.attn.q_proj"]):
                assert model.blocks[0].attn.q_proj is not original
                raise RuntimeError("boom")
        assert model.blocks[0].attn.q_proj is original

    def test_mixed_undo_tokens(self):
        model = small_model()
        site = surgery.resolve(model, "blocks.0.attn.q_proj")
        original = site.module
        wrapper = TransformedLinear(original)
        undo = [surgery.swap(site.parent, site.attr, wrapper)]
        undo.append(wrapper.attach(PruneMask(np.ones_like(original.weight.data))))
        surgery.restore(undo)
        assert model.blocks[0].attn.q_proj is original
        assert len(list(wrapper.transforms)) == 0
