"""Tests for RoPE and causal multi-head attention (incl. KV cache)."""

import numpy as np
import pytest

from repro.nn import KVCache, MultiHeadAttention, apply_rope, rope_tables
from repro.tensor import Tensor, no_grad


class TestRope:
    def test_tables_shape(self):
        cos, sin = rope_tables(8, 32)
        assert cos.shape == (32, 4)
        assert sin.shape == (32, 4)

    def test_odd_head_dim_raises(self):
        with pytest.raises(ValueError):
            rope_tables(7, 32)

    def test_position_zero_is_identity(self):
        cos, sin = rope_tables(8, 16)
        x = Tensor(np.random.default_rng(0).standard_normal((1, 1, 1, 8)))
        out = apply_rope(x, cos, sin, offset=0)
        assert np.allclose(out.data, x.data, atol=1e-6)

    def test_rotation_preserves_norm(self):
        cos, sin = rope_tables(8, 16)
        x = Tensor(np.random.default_rng(0).standard_normal((2, 3, 5, 8)))
        out = apply_rope(x, cos, sin)
        assert np.allclose(
            np.linalg.norm(out.data, axis=-1),
            np.linalg.norm(x.data, axis=-1),
            rtol=1e-4,
        )

    def test_offset_matches_full_sequence(self):
        cos, sin = rope_tables(8, 16)
        x = Tensor(np.random.default_rng(0).standard_normal((1, 1, 6, 8)))
        full = apply_rope(x, cos, sin, offset=0)
        tail = apply_rope(Tensor(x.data[:, :, 4:]), cos, sin, offset=4)
        assert np.allclose(full.data[:, :, 4:], tail.data, atol=1e-5)

    def test_relative_property_dot_products(self):
        # RoPE makes q_i . k_j depend only on i - j.
        cos, sin = rope_tables(16, 64)
        rng = np.random.default_rng(3)
        q = rng.standard_normal(16).astype(np.float32)
        k = rng.standard_normal(16).astype(np.float32)

        def rotated_dot(i, j):
            qi = apply_rope(Tensor(q[None, None, None, :]), cos, sin, offset=i).data[0, 0, 0]
            kj = apply_rope(Tensor(k[None, None, None, :]), cos, sin, offset=j).data[0, 0, 0]
            return float(qi @ kj)

        assert np.isclose(rotated_dot(5, 3), rotated_dot(12, 10), atol=1e-3)
        assert np.isclose(rotated_dot(0, 0), rotated_dot(20, 20), atol=1e-3)


class TestAttention:
    def make(self, dim=32, heads=4, max_len=16, seed=0):
        return MultiHeadAttention(dim, heads, max_len=max_len,
                                  rng=np.random.default_rng(seed))

    def test_output_shape(self):
        attn = self.make()
        out = attn(Tensor(np.random.default_rng(0).standard_normal((2, 8, 32))))
        assert out.shape == (2, 8, 32)

    def test_dim_not_divisible_raises(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(30, 4)

    def test_too_long_sequence_raises(self):
        attn = self.make(max_len=8)
        with pytest.raises(ValueError):
            attn(Tensor(np.zeros((1, 9, 32))))

    def test_causality(self):
        """Changing a future token must not change earlier outputs."""
        attn = self.make()
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 8, 32)).astype(np.float32)
        out1 = attn(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 5] += 10.0
        out2 = attn(Tensor(x2)).data
        assert np.allclose(out1[0, :5], out2[0, :5], atol=1e-5)
        assert not np.allclose(out1[0, 5:], out2[0, 5:], atol=1e-3)

    def test_gradients_reach_all_projections(self):
        attn = self.make()
        x = Tensor(np.random.default_rng(0).standard_normal((1, 4, 32)),
                   requires_grad=True)
        attn(x).sum().backward()
        for name, p in attn.named_parameters():
            assert p.grad is not None, name
        assert x.grad is not None

    def test_kv_cache_matches_full_forward(self):
        attn = self.make()
        rng = np.random.default_rng(2)
        x = rng.standard_normal((1, 6, 32)).astype(np.float32)
        with no_grad():
            full = attn(Tensor(x)).data
            cache = KVCache()
            prefix = attn(Tensor(x[:, :4]), cache=cache).data
            suffix = attn(Tensor(x[:, 4:]), cache=cache).data
        assert np.allclose(full[:, :4], prefix, atol=1e-4)
        assert np.allclose(full[:, 4:], suffix, atol=1e-4)

    def test_kv_cache_token_by_token(self):
        attn = self.make()
        rng = np.random.default_rng(4)
        x = rng.standard_normal((1, 5, 32)).astype(np.float32)
        with no_grad():
            full = attn(Tensor(x)).data
            cache = KVCache()
            outs = [attn(Tensor(x[:, i:i + 1]), cache=cache).data for i in range(5)]
        stitched = np.concatenate(outs, axis=1)
        assert np.allclose(full, stitched, atol=1e-4)
        assert cache.length == 5

    def test_cache_respects_max_len(self):
        attn = self.make(max_len=4)
        cache = KVCache()
        with no_grad():
            attn(Tensor(np.zeros((1, 4, 32))), cache=cache)
            with pytest.raises(ValueError):
                attn(Tensor(np.zeros((1, 1, 32))), cache=cache)

    def test_attention_weights_rowsum(self):
        """Single-position uniform-value input: output is o_proj(value avg)."""
        attn = self.make()
        x = np.zeros((1, 1, 32), dtype=np.float32)
        out = attn(Tensor(x))
        assert out.shape == (1, 1, 32)
        assert np.allclose(out.data, 0.0, atol=1e-6)
