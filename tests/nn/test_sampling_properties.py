"""Property-style tests of the sampling strategies and beam search.

Complements tests/nn/test_sampling.py (behavioural spot checks) with
invariants over many random logit vectors: seeded determinism, nucleus
mass bounds, top-k/greedy consistency, and beam-search degeneration.
"""

import numpy as np
import pytest

from repro.nn import (
    beam_search,
    greedy,
    sample_token,
    sample_top_k,
    sample_top_p,
)

VOCAB = 12


def random_logits(seed):
    rng = np.random.default_rng(seed)
    return rng.normal(scale=3.0, size=VOCAB).astype(np.float32)


def softmax(x):
    e = np.exp(x - x.max())
    return e / e.sum()


class TestSeededDeterminism:
    @pytest.mark.parametrize("kwargs", [
        {},
        {"temperature": 0.7},
        {"top_k": 4},
        {"top_p": 0.8},
    ])
    def test_same_seed_same_draws(self, kwargs):
        for trial in range(10):
            logits = random_logits(trial)
            a = [sample_token(logits, np.random.default_rng(7), **kwargs)
                 for _ in range(5)]
            b = [sample_token(logits, np.random.default_rng(7), **kwargs)
                 for _ in range(5)]
            assert a == b

    def test_rng_state_advances(self):
        logits = random_logits(0)
        rng = np.random.default_rng(0)
        draws = {sample_token(logits, rng, temperature=5.0)
                 for _ in range(100)}
        assert len(draws) > 1, "a shared generator must not repeat one draw"


class TestTopPMassInvariant:
    def test_samples_stay_inside_nucleus(self):
        # Every draw must come from the smallest prefix (by descending
        # probability) whose cumulative mass reaches p.
        p = 0.7
        for trial in range(20):
            logits = random_logits(trial)
            probs = softmax(logits.astype(np.float64))
            order = np.argsort(probs)[::-1]
            cutoff = int(np.searchsorted(np.cumsum(probs[order]), p)) + 1
            nucleus = set(order[:cutoff].tolist())
            for seed in range(25):
                tok = sample_top_p(logits, np.random.default_rng(seed), p=p)
                assert tok in nucleus

    def test_nucleus_mass_reaches_p(self):
        for trial in range(20):
            logits = random_logits(trial)
            probs = softmax(logits.astype(np.float64))
            order = np.argsort(probs)[::-1]
            cumulative = np.cumsum(probs[order])
            cutoff = int(np.searchsorted(cumulative, 0.7)) + 1
            assert cumulative[cutoff - 1] >= 0.7
            # Minimality: dropping the last kept token dips below p.
            if cutoff > 1:
                assert cumulative[cutoff - 2] < 0.7


class TestGreedyTopKConsistency:
    def test_near_zero_temperature_matches_greedy_for_any_k(self):
        for trial in range(10):
            logits = random_logits(trial)
            want = greedy(logits)
            for k in range(1, VOCAB + 1):
                got = sample_top_k(logits, np.random.default_rng(trial),
                                   k=k, temperature=1e-6)
                assert got == want

    def test_greedy_always_in_topk_support(self):
        for trial in range(10):
            logits = random_logits(trial)
            support = {
                sample_top_k(logits, np.random.default_rng(s), k=3,
                             temperature=10.0)
                for s in range(200)
            }
            assert greedy(logits) in support


class TestBeamSearch:
    def test_beam_one_equals_greedy_generate(self, pretrained_model):
        prompt = [1, 2, 3]
        reference = pretrained_model.generate(prompt, 6, greedy=True)
        beam = beam_search(pretrained_model, prompt, 6, beam_width=1)
        assert beam == reference

    def test_deterministic(self, pretrained_model):
        a = beam_search(pretrained_model, [4, 5], 5, beam_width=3)
        b = beam_search(pretrained_model, [4, 5], 5, beam_width=3)
        assert a == b
        assert len(a) == 5

    def test_wider_beam_no_worse_log_prob(self, pretrained_model):
        # Beam search maximizes total log-prob; a wider beam must find a
        # hypothesis at least as good as the greedy path.
        prompt = [1, 2, 3]

        def score(tokens):
            total = 0.0
            context = list(prompt)
            for tok in tokens:
                ids = np.asarray(context, dtype=np.int64)[None, :]
                logits = pretrained_model(ids).data[0, -1].astype(np.float64)
                logp = logits - logits.max()
                logp -= np.log(np.exp(logp).sum())
                total += float(logp[tok])
                context.append(tok)
            return total

        narrow = beam_search(pretrained_model, prompt, 4, beam_width=1)
        wide = beam_search(pretrained_model, prompt, 4, beam_width=4)
        assert score(wide) >= score(narrow) - 1e-6

    def test_invalid_width(self, pretrained_model):
        with pytest.raises(ValueError):
            beam_search(pretrained_model, [1], 3, beam_width=0)
