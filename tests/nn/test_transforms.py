"""TransformedLinear: pipeline composition and effective-weight folding."""

import numpy as np

from repro.nn import Linear
from repro.nn.transforms import (
    FakeQuantSTE,
    LoRADelta,
    PruneMask,
    TransformedLinear,
    fold_disabled,
    fold_enabled,
)
from repro.obs import MetricsRegistry, use_registry
from repro.quant.formats import QuantSpec
from repro.quant.qmodule import fake_quant_ste
from repro.tensor import Tensor, check_gradients, no_grad


def make_layer(bits=4, ratio=0.5, seed=0):
    rng = np.random.default_rng(seed)
    inner = Linear(12, 8, rng=rng)
    mask = (rng.random(inner.weight.shape) > ratio).astype(np.float32)
    layer = TransformedLinear(
        inner, [PruneMask(mask), FakeQuantSTE(QuantSpec(bits=bits))]
    )
    return layer, mask, rng


class TestPipelineMath:
    def test_matches_manual_composition(self):
        layer, mask, rng = make_layer()
        x = Tensor(rng.standard_normal((5, 12)).astype(np.float32))
        with no_grad():
            got = layer(x).data
        masked = layer.inner.weight * Tensor(mask)
        eff = fake_quant_ste(masked, QuantSpec(bits=4))
        want = x.data @ eff.data + layer.inner.bias.data
        assert np.array_equal(got, want)

    def test_pruned_coordinates_zero(self):
        layer, mask, _ = make_layer()
        eff = layer.effective_weight().data
        assert np.allclose(eff[mask == 0], 0.0)

    def test_convenience_views(self):
        layer, mask, _ = make_layer(bits=4)
        assert layer.quant_bits == 4
        assert np.array_equal(layer.prune_mask, mask)
        expected = float(1.0 - mask.sum() / mask.size)
        assert layer.sparsity == expected


class TestFolding:
    def test_fold_hit_after_first_forward(self):
        layer, _, rng = make_layer()
        x = Tensor(rng.standard_normal((3, 12)).astype(np.float32))
        reg = MetricsRegistry()
        with use_registry(reg), no_grad():
            layer(x)
            layer(x)
            layer(x)
        assert reg.counter("nn/fold/misses").value == 1
        assert reg.counter("nn/fold/hits").value == 2

    def test_folded_equals_unfolded(self):
        layer, _, rng = make_layer()
        x = Tensor(rng.standard_normal((3, 12)).astype(np.float32))
        with no_grad():
            folded = layer(x).data  # populates + uses the cache
            folded2 = layer(x).data
            with fold_disabled():
                unfolded = layer(x).data
        assert np.array_equal(folded, unfolded)
        assert np.array_equal(folded2, unfolded)

    def test_weight_rebind_invalidates(self):
        layer, _, rng = make_layer()
        x = Tensor(rng.standard_normal((3, 12)).astype(np.float32))
        reg = MetricsRegistry()
        with use_registry(reg), no_grad():
            before = layer(x).data.copy()
            layer.inner.weight.data = (
                layer.inner.weight.data + np.float32(0.5)
            )
            after = layer(x).data
        assert reg.counter("nn/fold/misses").value == 2
        assert not np.array_equal(before, after)

    def test_inplace_edit_plus_bump_invalidates(self):
        layer, _, rng = make_layer()
        x = Tensor(rng.standard_normal((3, 12)).astype(np.float32))
        with no_grad():
            before = layer(x).data.copy()
            layer.inner.weight.data[...] += 0.5  # silent w.r.t. the cache
            stale = layer(x).data.copy()
            layer.inner.weight.bump_version()
            fresh = layer(x).data
        assert np.array_equal(before, stale)  # documented staleness
        assert not np.array_equal(before, fresh)

    def test_mask_swap_invalidates(self):
        layer, mask, rng = make_layer()
        x = Tensor(rng.standard_normal((3, 12)).astype(np.float32))
        with no_grad():
            before = layer(x).data.copy()
            layer.find(PruneMask).set_mask(np.ones_like(mask))
            after = layer(x).data
        assert not np.array_equal(before, after)

    def test_no_fold_when_grad_can_flow(self):
        layer, _, rng = make_layer()
        layer.inner.weight.requires_grad = True
        x = Tensor(rng.standard_normal((3, 12)).astype(np.float32))
        reg = MetricsRegistry()
        with use_registry(reg):
            out = layer(x)
            out.sum().backward()
        assert reg.counter("nn/fold/hits").value == 0
        assert reg.counter("nn/fold/misses").value == 0
        assert layer.inner.weight.grad is not None

    def test_frozen_weight_folds_even_in_grad_mode(self):
        layer, _, rng = make_layer()
        layer.inner.weight.requires_grad = False
        layer.inner.bias.requires_grad = False
        x = Tensor(rng.standard_normal((3, 12)).astype(np.float32),
                   requires_grad=True)
        reg = MetricsRegistry()
        with use_registry(reg):
            layer(x).sum().backward()
            layer(x).sum().backward()
        assert reg.counter("nn/fold/misses").value == 1
        assert reg.counter("nn/fold/hits").value == 1
        assert x.grad is not None

    def test_fold_disabled_scope(self):
        assert fold_enabled()
        with fold_disabled():
            assert not fold_enabled()
        assert fold_enabled()


class TestAttachDetach:
    def test_attach_undo_restores_exact_list(self):
        layer, _, _ = make_layer()
        original = list(layer.transforms)
        token = layer.attach(LoRADelta(12, 8, rank=2))
        assert len(list(layer.transforms)) == 3
        token.restore()
        assert [t for t in layer.transforms] == original
        assert all(a is b for a, b in zip(layer.transforms, original))

    def test_attach_replace_is_idempotent(self):
        layer, _, _ = make_layer()
        layer.attach(LoRADelta(12, 8, rank=2))
        layer.attach(LoRADelta(12, 8, rank=2))
        deltas = [t for t in layer.transforms if isinstance(t, LoRADelta)]
        assert len(deltas) == 1

    def test_attach_stacking_opt_in(self):
        layer, _, _ = make_layer()
        layer.attach(LoRADelta(12, 8, rank=2), replace=False)
        layer.attach(LoRADelta(12, 8, rank=2), replace=False)
        deltas = [t for t in layer.transforms if isinstance(t, LoRADelta)]
        assert len(deltas) == 2

    def test_detach_by_class(self):
        layer, _, _ = make_layer()
        layer.detach(PruneMask)
        assert layer.find(PruneMask) is None
        assert layer.quant_bits == 4


class TestComposedGradients:
    def test_gradcheck_mask_lora_composition(self):
        rng = np.random.default_rng(0)
        inner = Linear(6, 4, rng=rng)
        mask = (rng.random(inner.weight.shape) > 0.4).astype(np.float32)
        layer = TransformedLinear(inner, [PruneMask(mask)])
        layer.attach(LoRADelta(6, 4, rank=2, rng=rng))
        layer.find(LoRADelta).lora_b.data = (
            rng.standard_normal((2, 4)).astype(np.float32) * 0.1
        )
        inner.weight.requires_grad = True
        inner.bias.requires_grad = True
        x = Tensor(rng.standard_normal((3, 6)).astype(np.float32),
                   requires_grad=True)
        delta = layer.find(LoRADelta)
        check_gradients(
            lambda x_, w_, a_, b_: layer(x_).sum(),
            [x, inner.weight, delta.lora_a, delta.lora_b],
        )

    def test_mask_quant_lora_grads_match_manual_stack(self):
        """STE grads are not finite-differenceable; instead assert the
        composed pipeline's analytic grads equal the same math written
        out with the raw primitives."""
        rng = np.random.default_rng(1)
        spec = QuantSpec(bits=4)

        def build():
            inner = Linear(6, 4, rng=np.random.default_rng(1))
            inner.weight.requires_grad = True
            mask = (np.random.default_rng(2).random(inner.weight.shape) > 0.4)
            return inner, mask.astype(np.float32)

        x_data = rng.standard_normal((3, 6)).astype(np.float32)
        a_data = (rng.standard_normal((6, 2)) / np.sqrt(2)).astype(np.float32)
        b_data = rng.standard_normal((2, 4)).astype(np.float32) * 0.1

        # Composed pipeline.
        inner1, mask = build()
        layer = TransformedLinear(
            inner1, [PruneMask(mask), FakeQuantSTE(spec)]
        )
        delta = LoRADelta(6, 4, rank=2, alpha=4.0)
        delta.lora_a.data = a_data.copy()
        delta.lora_b.data = b_data.copy()
        layer.attach(delta)
        x1 = Tensor(x_data.copy(), requires_grad=True)
        layer(x1).sum().backward()

        # Same stack from primitives.
        inner2, _ = build()
        a2 = Tensor(a_data.copy(), requires_grad=True)
        b2 = Tensor(b_data.copy(), requires_grad=True)
        x2 = Tensor(x_data.copy(), requires_grad=True)
        eff = fake_quant_ste(inner2.weight * Tensor(mask), spec)
        out = x2 @ eff + inner2.bias
        out = out + ((x2 @ a2) @ b2) * delta.scaling
        out.sum().backward()

        assert np.array_equal(x1.grad, x2.grad)
        assert np.array_equal(inner1.weight.grad, inner2.weight.grad)
        assert np.array_equal(delta.lora_a.grad, a2.grad)
        assert np.array_equal(delta.lora_b.grad, b2.grad)
