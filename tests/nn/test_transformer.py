"""Tests for the TransformerLM: shapes, staged forward, caching, training."""

import numpy as np
import pytest

from repro.nn import AdamW, TransformerConfig, TransformerLM
from repro.tensor import Tensor, cross_entropy, no_grad


def small_config(**kw):
    defaults = dict(vocab_size=32, dim=32, num_layers=3, num_heads=4,
                    max_len=32, seed=0)
    defaults.update(kw)
    return TransformerConfig(**defaults)


@pytest.fixture(scope="module")
def model():
    return TransformerLM(small_config())


class TestForward:
    def test_logits_shape(self, model):
        ids = np.zeros((2, 7), dtype=np.int64)
        assert model(ids).shape == (2, 7, 32)

    def test_hidden_states_returned(self, model):
        ids = np.zeros((1, 5), dtype=np.int64)
        logits, hiddens = model(ids, return_hidden_states=True)
        assert len(hiddens) == 3
        assert all(h.shape == (1, 5, 32) for h in hiddens)

    def test_staged_forward_matches_monolithic(self, model):
        ids = np.random.default_rng(0).integers(0, 32, (2, 6))
        with no_grad():
            full = model(ids).data
            h = model.embed_tokens(ids)
            h = model.run_blocks(h, 0, 2)
            h = model.run_blocks(h, 2)
            staged = model.head(h).data
        assert np.allclose(full, staged, atol=1e-5)

    def test_tied_embeddings_share_memory(self):
        m = TransformerLM(small_config(tie_embeddings=True))
        assert m.lm_head is None
        names = [n for n, _ in m.named_parameters()]
        assert not any("lm_head" in n for n in names)

    def test_untied_head(self):
        m = TransformerLM(small_config(tie_embeddings=False))
        assert m.lm_head is not None
        ids = np.zeros((1, 4), dtype=np.int64)
        assert m(ids).shape == (1, 4, 32)

    def test_causality_end_to_end(self, model):
        rng = np.random.default_rng(1)
        ids = rng.integers(0, 32, (1, 8))
        with no_grad():
            out1 = model(ids).data.copy()
            ids2 = ids.copy()
            ids2[0, 6] = (ids2[0, 6] + 1) % 32
            out2 = model(ids2).data
        assert np.allclose(out1[0, :6], out2[0, :6], atol=1e-4)


class TestGeneration:
    def test_cached_forward_matches_full(self, model):
        rng = np.random.default_rng(2)
        ids = rng.integers(0, 32, (1, 10))
        with no_grad():
            full = model(ids).data
            caches = model.new_caches()
            a = model(ids[:, :6], caches=caches).data
            b = model(ids[:, 6:], caches=caches).data
        assert np.allclose(full[:, :6], a, atol=1e-4)
        assert np.allclose(full[:, 6:], b, atol=1e-4)

    def test_generate_greedy_deterministic(self, model):
        out1 = model.generate([1, 2, 3], 4, greedy=True)
        out2 = model.generate([1, 2, 3], 4, greedy=True)
        assert out1 == out2
        assert len(out1) == 4
        assert all(0 <= t < 32 for t in out1)

    def test_generate_seeded_sampling_reproducible(self, model):
        g1 = model.generate([1], 5, rng=np.random.default_rng(7))
        g2 = model.generate([1], 5, rng=np.random.default_rng(7))
        assert g1 == g2

    def test_generate_restores_training_mode(self, model):
        model.train()
        model.generate([1], 2, greedy=True)
        assert model.training


class TestTraining:
    def test_loss_decreases_on_memorization(self):
        m = TransformerLM(small_config())
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 32, (4, 16))
        opt = AdamW(m.parameters(), lr=3e-3)
        first = last = None
        for step in range(25):
            loss = cross_entropy(m(ids[:, :-1]), ids[:, 1:])
            opt.zero_grad()
            loss.backward()
            opt.step()
            if first is None:
                first = loss.item()
            last = loss.item()
        assert last < first * 0.7

    def test_all_parameters_receive_grads(self):
        m = TransformerLM(small_config())
        ids = np.random.default_rng(0).integers(0, 32, (2, 8))
        loss = cross_entropy(m(ids[:, :-1]), ids[:, 1:])
        loss.backward()
        for name, p in m.named_parameters():
            assert p.grad is not None, f"{name} got no grad"

    def test_config_mlp_hidden_default(self):
        cfg = small_config(dim=96, mlp_hidden=None)
        assert cfg.resolved_mlp_hidden() % 8 == 0
        assert cfg.resolved_mlp_hidden() >= 96 * 8 // 3

    def test_config_mlp_hidden_explicit(self):
        cfg = small_config(mlp_hidden=123)
        assert cfg.resolved_mlp_hidden() == 123

    def test_num_layers_property(self, model):
        assert model.num_layers == 3
