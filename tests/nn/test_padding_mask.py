"""Tests for key-padding-mask support in attention / the LM."""

import numpy as np
import pytest

from repro.nn import MultiHeadAttention, TransformerConfig, TransformerLM
from repro.tensor import Tensor, cross_entropy, no_grad


def attn(seed=0):
    return MultiHeadAttention(32, 4, max_len=16, rng=np.random.default_rng(seed))


class TestAttentionPadding:
    def test_padded_keys_ignored(self):
        """Changing a padded position must not affect other outputs."""
        layer = attn()
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 8, 32)).astype(np.float32)
        pad = np.zeros((1, 8), dtype=bool)
        pad[0, 3] = True
        with no_grad():
            out1 = layer(Tensor(x), key_padding_mask=pad).data.copy()
            x2 = x.copy()
            x2[0, 3] += 10.0
            out2 = layer(Tensor(x2), key_padding_mask=pad).data
        keep = [i for i in range(8) if i != 3]
        assert np.allclose(out1[0, keep], out2[0, keep], atol=1e-5)

    def test_no_mask_matches_all_false_mask(self):
        layer = attn()
        x = Tensor(np.random.default_rng(1).standard_normal((2, 6, 32)))
        with no_grad():
            plain = layer(x).data
            masked = layer(x, key_padding_mask=np.zeros((2, 6), dtype=bool)).data
        assert np.allclose(plain, masked, atol=1e-6)

    def test_mask_shape_validated(self):
        layer = attn()
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((2, 6, 32))),
                  key_padding_mask=np.zeros((2, 5), dtype=bool))

    def test_mask_with_cache_must_cover_total_length(self):
        from repro.nn import KVCache

        layer = attn()
        cache = KVCache()
        with no_grad():
            layer(Tensor(np.zeros((1, 4, 32))), cache=cache)
        # Suffix-only masks are rejected: with a cache the mask spans the
        # whole key axis (cache.length + seq).
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((1, 1, 32))), cache=cache,
                  key_padding_mask=np.zeros((1, 1), dtype=bool))
        with no_grad():
            layer(Tensor(np.zeros((1, 1, 32))), cache=cache,
                  key_padding_mask=np.zeros((1, 5), dtype=bool))
        assert cache.length == 5

    def test_all_false_mask_with_cache_matches_unmasked(self):
        from repro.nn import KVCache

        layer = attn()
        rng = np.random.default_rng(4)
        x = rng.standard_normal((1, 6, 32)).astype(np.float32)
        step = rng.standard_normal((1, 1, 32)).astype(np.float32)
        with no_grad():
            plain_cache = KVCache()
            layer(Tensor(x), cache=plain_cache)
            plain = layer(Tensor(step), cache=plain_cache).data
            masked_cache = KVCache()
            layer(Tensor(x), cache=masked_cache)
            masked = layer(
                Tensor(step), cache=masked_cache,
                key_padding_mask=np.zeros((1, 7), dtype=bool),
            ).data
        assert np.allclose(plain, masked, atol=1e-6)

    def test_causality_still_holds_with_mask(self):
        layer = attn()
        rng = np.random.default_rng(2)
        x = rng.standard_normal((1, 8, 32)).astype(np.float32)
        pad = np.zeros((1, 8), dtype=bool)
        pad[0, 7] = True
        with no_grad():
            out1 = layer(Tensor(x), key_padding_mask=pad).data.copy()
            x2 = x.copy()
            x2[0, 6] += 10.0  # future for positions < 6
            out2 = layer(Tensor(x2), key_padding_mask=pad).data
        assert np.allclose(out1[0, :6], out2[0, :6], atol=1e-5)


class TestLMPadding:
    @pytest.fixture
    def model(self):
        return TransformerLM(TransformerConfig(
            vocab_size=32, dim=32, num_layers=2, num_heads=4, max_len=32, seed=0
        ))

    def test_forward_with_mask(self, model):
        ids = np.random.default_rng(0).integers(0, 32, (2, 8))
        pad = np.zeros((2, 8), dtype=bool)
        pad[:, 6:] = True
        out = model(ids, key_padding_mask=pad)
        assert out.shape == (2, 8, 32)

    def test_padded_batch_matches_unpadded_short_sequence(self, model):
        """Logits on real positions equal those of the unpadded sequence."""
        rng = np.random.default_rng(1)
        short = rng.integers(0, 32, (1, 5))
        padded = np.concatenate(
            [short, np.zeros((1, 3), dtype=np.int64)], axis=1
        )
        pad = np.zeros((1, 8), dtype=bool)
        pad[0, 5:] = True
        with no_grad():
            out_short = model(short).data
            out_padded = model(padded, key_padding_mask=pad).data
        assert np.allclose(out_short[0], out_padded[0, :5], atol=1e-4)

    def test_training_with_ignore_index(self, model):
        """Padding mask + ignore_index: the canonical variable-length
        training recipe runs and produces finite gradients."""
        ids = np.random.default_rng(0).integers(1, 32, (2, 8))
        ids[0, 6:] = 0  # pad token
        pad = ids == 0
        targets = np.roll(ids, -1, axis=1)
        targets[pad] = -1
        logits = model(ids, key_padding_mask=pad)
        loss = cross_entropy(logits, targets, ignore_index=-1)
        loss.backward()
        assert np.isfinite(loss.item())
        grads = [p.grad for _, p in model.named_parameters() if p.grad is not None]
        assert grads and all(np.all(np.isfinite(g)) for g in grads)
