"""Tests for the Module/Parameter registration and state-dict machinery."""

import numpy as np
import pytest

from repro.nn import Linear, Module, ModuleList, Parameter, Sequential
from repro.tensor import Tensor


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=np.random.default_rng(0))
        self.fc2 = Linear(8, 2, rng=np.random.default_rng(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu())


class TestRegistration:
    def test_parameters_collected_recursively(self):
        model = Toy()
        names = [n for n, _ in model.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_num_parameters(self):
        model = Toy()
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_trainable_only_count(self):
        model = Toy()
        model.fc1.requires_grad_(False)
        assert model.num_parameters(trainable_only=True) == 8 * 2 + 2

    def test_named_modules(self):
        model = Toy()
        names = [n for n, _ in model.named_modules()]
        assert "" in names and "fc1" in names and "fc2" in names

    def test_get_submodule(self):
        model = Toy()
        assert model.get_submodule("fc1") is model.fc1
        with pytest.raises(KeyError):
            model.get_submodule("nope")

    def test_modulelist_indexing_and_paths(self):
        ml = ModuleList([Linear(2, 2), Linear(2, 2)])
        assert len(ml) == 2
        assert ml[1] is list(ml)[1]
        names = [n for n, _ in ml.named_parameters()]
        assert "0.weight" in names and "1.weight" in names

    def test_modulelist_slice(self):
        ml = ModuleList([Linear(2, 2) for _ in range(4)])
        sub = ml[1:3]
        assert len(sub) == 2


class TestModes:
    def test_train_eval_propagates(self):
        model = Toy()
        model.eval()
        assert not model.training
        assert not model.fc1.training
        model.train()
        assert model.fc2.training

    def test_zero_grad(self):
        model = Toy()
        x = Tensor(np.ones((3, 4)))
        model(x).sum().backward()
        assert model.fc1.weight.grad is not None
        model.zero_grad()
        assert model.fc1.weight.grad is None

    def test_requires_grad_freeze(self):
        model = Toy()
        model.requires_grad_(False)
        x = Tensor(np.ones((3, 4)))
        out = model(x)
        assert not out.requires_grad


class TestStateDict:
    def test_roundtrip(self):
        a, b = Toy(), Toy()
        b.fc1.weight.data[:] = 7.0
        a.load_state_dict(b.state_dict())
        assert np.allclose(a.fc1.weight.data, 7.0)

    def test_strict_missing_raises(self):
        model = Toy()
        state = model.state_dict()
        state.pop("fc1.weight")
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_strict_unexpected_raises(self):
        model = Toy()
        state = model.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_non_strict_ignores_extras(self):
        model = Toy()
        state = model.state_dict()
        state["bogus"] = np.zeros(3)
        model.load_state_dict(state, strict=False)

    def test_shape_mismatch_raises(self):
        model = Toy()
        state = model.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_state_dict_copies_data(self):
        model = Toy()
        state = model.state_dict()
        state["fc1.weight"][:] = 123.0
        assert not np.allclose(model.fc1.weight.data, 123.0)


class TestSequential:
    def test_forward_chains(self):
        seq = Sequential(Linear(3, 5, rng=np.random.default_rng(0)),
                         Linear(5, 2, rng=np.random.default_rng(1)))
        out = seq(Tensor(np.ones((4, 3))))
        assert out.shape == (4, 2)
        assert len(seq) == 2
        assert isinstance(seq[0], Linear)

    def test_parameter_is_tensor_with_grad(self):
        p = Parameter(np.zeros(3))
        assert p.requires_grad
