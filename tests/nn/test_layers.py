"""Tests for primitive layers (Linear, Embedding, norms, Dropout)."""

import numpy as np
import pytest

from repro.nn import Dropout, Embedding, LayerNorm, Linear, RMSNorm
from repro.tensor import Tensor


def rng(seed=0):
    return np.random.default_rng(seed)


class TestLinear:
    def test_forward_matches_numpy(self):
        layer = Linear(4, 3, rng=rng())
        x = rng(1).standard_normal((5, 4)).astype(np.float32)
        out = layer(Tensor(x))
        assert np.allclose(out.data, x @ layer.weight.data + layer.bias.data, rtol=1e-5)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, rng=rng())
        assert layer.bias is None
        names = [n for n, _ in layer.named_parameters()]
        assert names == ["weight"]

    def test_batched_3d_input(self):
        layer = Linear(4, 3, rng=rng())
        out = layer(Tensor(np.ones((2, 5, 4))))
        assert out.shape == (2, 5, 3)

    def test_gradients_flow(self):
        layer = Linear(4, 3, rng=rng())
        layer(Tensor(np.ones((2, 4)))).sum().backward()
        assert layer.weight.grad.shape == (4, 3)
        assert np.allclose(layer.bias.grad, np.full(3, 2.0))


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 6, rng=rng())
        out = emb(np.array([[1, 2, 3]]))
        assert out.shape == (1, 3, 6)

    def test_grad_sparse_rows(self):
        emb = Embedding(10, 6, rng=rng())
        emb(np.array([2, 2])).sum().backward()
        assert np.allclose(emb.weight.grad[2], 2.0)
        assert np.allclose(emb.weight.grad[0], 0.0)


class TestLayerNorm:
    def test_output_statistics(self):
        ln = LayerNorm(16)
        x = Tensor(rng(0).standard_normal((4, 16)) * 5 + 3)
        out = ln(x)
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-4)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_affine_params_used(self):
        ln = LayerNorm(8)
        ln.weight.data[:] = 2.0
        ln.bias.data[:] = 1.0
        out = ln(Tensor(rng(0).standard_normal((3, 8))))
        assert np.allclose(out.data.mean(axis=-1), 1.0, atol=1e-4)

    def test_grad_flows_to_affine(self):
        ln = LayerNorm(8)
        ln(Tensor(rng(0).standard_normal((3, 8)), requires_grad=True)).sum().backward()
        assert ln.weight.grad is not None
        assert ln.bias.grad is not None


class TestRMSNorm:
    def test_unit_rms(self):
        norm = RMSNorm(16)
        x = Tensor(rng(0).standard_normal((4, 16)) * 3)
        out = norm(x)
        ms = (out.data**2).mean(axis=-1)
        assert np.allclose(ms, 1.0, atol=1e-2)

    def test_no_bias_param(self):
        norm = RMSNorm(8)
        names = [n for n, _ in norm.named_parameters()]
        assert names == ["weight"]

    def test_scale_invariance_direction(self):
        norm = RMSNorm(8)
        x = rng(0).standard_normal((2, 8)).astype(np.float32)
        out1 = norm(Tensor(x)).data
        out2 = norm(Tensor(x * 10)).data
        assert np.allclose(out1, out2, atol=1e-3)


class TestDropout:
    def test_training_mode_drops(self):
        drop = Dropout(0.5, seed=0)
        out = drop(Tensor(np.ones(1000)))
        assert (out.data == 0).sum() > 300

    def test_eval_mode_identity(self):
        drop = Dropout(0.5, seed=0)
        drop.eval()
        x = Tensor(np.ones(100))
        assert np.allclose(drop(x).data, 1.0)

    def test_p_zero_noop(self):
        drop = Dropout(0.0)
        x = Tensor(np.ones(10))
        assert drop(x) is x
