"""Flat-buffer optimizer steps must be bitwise identical to the loop.

The vectorized step gathers every active parameter into one contiguous
slab and mirrors the per-parameter update with in-place ufuncs — same
ops on the same values, so parameters AND state must match the loop
bit-for-bit, including under window rotation (per-parameter Adam step
counts diverge) and after falling back to the loop mid-run.
"""

import numpy as np
import pytest

from repro.nn import Adafactor, Adam, AdamW, SGD
from repro.tensor import Tensor

SHAPES = [(16, 16)] * 4 + [(16,)] * 6


def make_params(seed=0):
    rng = np.random.default_rng(seed)
    return [
        Tensor(rng.standard_normal(s).astype(np.float32), requires_grad=True)
        for s in SHAPES
    ]


def run(opt_cls, kwargs, flat, steps=6, rotate=True):
    params = make_params()
    opt = opt_cls(params, **kwargs)
    opt.flat = flat
    for step in range(steps):
        rng = np.random.default_rng(100 + step)
        # Rotate the active set like the adaptive window does.
        active = params if not rotate or step % 2 else params[: 4 + step]
        for p in params:
            p.grad = None
        for p in active:
            p.grad = rng.standard_normal(p.data.shape).astype(np.float32)
        opt.step()
    return params, opt


def assert_bitwise_equal(flat_run, loop_run):
    (pf, of), (pl, ol) = flat_run, loop_run
    for i, (a, b) in enumerate(zip(pf, pl)):
        assert np.array_equal(a.data, b.data), f"param {i} data diverged"
        sa, sb = of.state.get(id(a)), ol.state.get(id(b))
        assert (sa is None) == (sb is None), f"param {i} state presence"
        if sa is None:
            continue
        assert set(sa) == set(sb)
        for key in sa:
            if isinstance(sa[key], np.ndarray):
                assert np.array_equal(sa[key], sb[key]), f"param {i} {key}"
            else:
                assert sa[key] == sb[key], f"param {i} {key}"


class TestBitwiseIdentity:
    @pytest.mark.parametrize(
        "opt_cls,kwargs",
        [
            (SGD, dict(lr=0.05)),
            (SGD, dict(lr=0.05, momentum=0.9)),
            (SGD, dict(lr=0.05, momentum=0.9, weight_decay=0.01)),
            (Adam, dict(lr=1e-3)),
            (AdamW, dict(lr=1e-3, weight_decay=0.01)),
        ],
    )
    def test_flat_matches_loop(self, opt_cls, kwargs):
        assert_bitwise_equal(
            run(opt_cls, kwargs, flat=True), run(opt_cls, kwargs, flat=False)
        )

    def test_flat_then_loop_then_flat(self):
        # A loop-path step replaces the slab-view state arrays; the flat
        # path must detect that and rebuild its buffers, not corrupt.
        def interleaved(pattern):
            params = make_params()
            opt = Adam(params, lr=1e-3)
            for step, flat in enumerate(pattern):
                opt.flat = flat
                rng = np.random.default_rng(200 + step)
                for p in params:
                    p.grad = rng.standard_normal(p.data.shape).astype(
                        np.float32
                    )
                opt.step()
            return params, opt

        assert_bitwise_equal(
            interleaved([True, False, True, True]),
            interleaved([False, False, False, False]),
        )

    def test_changing_active_set_rebuilds_buffers(self):
        params, opt = run(Adam, dict(lr=1e-3), flat=True, steps=4, rotate=True)
        # Rotation means at least two distinct active sets were seen.
        assert opt._buffers is not None


class TestFallbacks:
    def test_single_param_uses_loop(self):
        p = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        opt = Adam([p], lr=0.1)
        p.grad = np.ones(4, dtype=np.float32)
        opt.step()  # len(active) == 1 -> loop path
        assert opt._buffers is None

    def test_mixed_dtypes_fall_back(self):
        a = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        b._data = np.ones(4, dtype=np.float64)  # Tensor coerces, so force
        opt = SGD([a, b], lr=0.1)
        a.grad = np.ones(4, dtype=np.float32)
        b.grad = np.ones(4, dtype=np.float64)
        opt.step()
        assert opt._buffers is None
        assert np.allclose(a.data, 0.9)

    def test_flat_disabled_by_default_when_unsupported(self):
        params = make_params()
        opt = Adafactor(params, lr=1e-2)
        assert opt.flat is False
        for p in params:
            p.grad = np.ones(p.data.shape, dtype=np.float32)
        opt.step()  # runs the loop, no flat machinery

    def test_flag_off_uses_loop(self):
        params = make_params()
        opt = Adam(params, lr=1e-3)
        opt.flat = False
        for p in params:
            p.grad = np.ones(p.data.shape, dtype=np.float32)
        opt.step()
        assert opt._buffers is None


class TestStateBytes:
    def test_adam_projection_counts_trainable_only(self):
        params = make_params()
        params[0].requires_grad = False
        opt = Adam(params, lr=1e-3)
        trainable = sum(p.size for p in params[1:])
        assert opt.state_bytes() == trainable * 2 * 4

    def test_adam_allocated_matches_projection_after_full_step(self):
        params = make_params()
        opt = Adam(params, lr=1e-3)
        projected = opt.state_bytes()
        for p in params:
            p.grad = np.ones(p.data.shape, dtype=np.float32)
        opt.step()
        assert opt.state_bytes() == projected

    def test_flat_state_counts_like_loop_state(self):
        flat_params, flat_opt = run(Adam, dict(lr=1e-3), flat=True)
        loop_params, loop_opt = run(Adam, dict(lr=1e-3), flat=False)
        assert flat_opt.state_bytes() == loop_opt.state_bytes()

    def test_partial_step_counts_allocated_only(self):
        params = make_params()
        opt = Adam(params, lr=1e-3)
        for p in params[:3]:
            p.grad = np.ones(p.data.shape, dtype=np.float32)
        opt.step()
        expected = sum(p.size for p in params[:3]) * 2 * 4
        assert opt.state_bytes() == expected

    def test_adafactor_factored_bytes(self):
        params = make_params()
        opt = Adafactor(params, lr=1e-2)
        for p in params:
            p.grad = np.ones(p.data.shape, dtype=np.float32)
        opt.step()
        expected = sum(
            (s[0] + s[1]) if len(s) == 2 else int(np.prod(s)) for s in SHAPES
        ) * 4
        assert opt.state_bytes() == expected

    def test_adafactor_ratio_ignores_frozen(self):
        params = make_params()
        frozen_ratio = Adafactor(params, lr=1e-2).state_floats_per_param
        params[0].requires_grad = False  # a big frozen matrix
        ratio = Adafactor(params, lr=1e-2).state_floats_per_param
        trainable = [p for p in params if p.requires_grad]
        n = sum(p.size for p in trainable)
        factored = sum(
            (p.data.shape[0] + p.data.shape[1]) if p.data.ndim == 2 else p.size
            for p in trainable
        )
        assert ratio == pytest.approx(factored / n)
        assert ratio != pytest.approx(frozen_ratio)

    def test_sgd_momentum_projection(self):
        params = make_params()
        opt = SGD(params, lr=0.1, momentum=0.9)
        n = sum(p.size for p in params)
        assert opt.state_bytes() == n * 4
