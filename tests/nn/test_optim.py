"""Tests for optimizers, LR schedules and gradient clipping."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    AdamW,
    ConstantLR,
    Parameter,
    SGD,
    StepLR,
    WarmupCosineLR,
    clip_grad_norm,
)
from repro.tensor import Tensor


def quadratic_param(seed=0):
    rng = np.random.default_rng(seed)
    return Parameter(rng.standard_normal(8) * 3)


def run_steps(opt, p, steps=200):
    for _ in range(steps):
        loss = (Tensor(p.data * 0) + p * p).sum()  # f(p) = sum p^2
        opt.zero_grad()
        loss.backward()
        opt.step()
    return float((p.data**2).sum())


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert run_steps(SGD([p], lr=0.1), p) < 1e-6

    def test_momentum_state_reported(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1, momentum=0.9)
        assert opt.state_floats_per_param == 1.0
        assert opt.state_bytes() == p.size * 4

    def test_plain_sgd_zero_state(self):
        p = quadratic_param()
        assert SGD([p], lr=0.1).state_bytes() == 0

    def test_weight_decay_shrinks(self):
        p = Parameter(np.ones(4))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        loss = (p * 0).sum()
        loss.backward()
        opt.step()
        assert np.all(p.data < 1.0)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert run_steps(Adam([p], lr=0.05), p, steps=400) < 1e-3

    def test_state_bytes_two_moments(self):
        p = quadratic_param()
        assert Adam([p], lr=1e-3).state_bytes() == p.size * 2 * 4

    def test_frozen_params_skipped(self):
        p = quadratic_param()
        p.requires_grad = False
        opt = Adam([p], lr=0.1)
        before = p.data.copy()
        p.grad = np.ones_like(p.data)
        opt.step()
        assert np.allclose(p.data, before)

    def test_none_grad_skipped(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.1)
        before = p.data.copy()
        opt.step()
        assert np.allclose(p.data, before)


class TestAdamW:
    def test_decay_applies_without_grad_signal(self):
        p = Parameter(np.full(4, 10.0))
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros_like(p.data)
        opt.step()
        assert np.all(p.data < 10.0)

    def test_converges(self):
        p = quadratic_param()
        assert run_steps(AdamW([p], lr=0.05, weight_decay=0.0), p, steps=400) < 1e-3


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(3))
        p.grad = np.array([0.1, 0.0, 0.0], dtype=np.float32)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert np.isclose(norm, 0.1, atol=1e-6)
        assert np.isclose(p.grad[0], 0.1)

    def test_clips_above_threshold(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0, dtype=np.float32)
        clip_grad_norm([p], max_norm=1.0)
        assert np.isclose(float(np.linalg.norm(p.grad)), 1.0, rtol=1e-5)

    def test_handles_none_grads(self):
        p = Parameter(np.zeros(4))
        assert clip_grad_norm([p], max_norm=1.0) == 0.0

    def test_all_frozen_group_returns_zero(self):
        # A frozen group (the out-of-window blocks) may still carry stale
        # grads from an earlier step; clipping must ignore them entirely.
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0, dtype=np.float32)
        p.requires_grad = False
        assert clip_grad_norm([p], max_norm=1.0) == 0.0
        assert np.array_equal(p.grad, np.full(4, 10.0, dtype=np.float32))

    def test_frozen_stale_grads_excluded_from_norm(self):
        live = Parameter(np.zeros(3))
        live.grad = np.array([3.0, 0.0, 0.0], dtype=np.float32)
        frozen = Parameter(np.zeros(3))
        frozen.grad = np.full(3, 100.0, dtype=np.float32)
        frozen.requires_grad = False
        norm = clip_grad_norm([live, frozen], max_norm=1.0)
        assert norm == pytest.approx(3.0)
        # Live grad clipped to the threshold, frozen grad untouched.
        assert np.isclose(float(np.linalg.norm(live.grad)), 1.0, rtol=1e-5)
        assert np.array_equal(frozen.grad, np.full(3, 100.0, dtype=np.float32))

    def test_mixed_none_and_live(self):
        live = Parameter(np.zeros(2))
        live.grad = np.array([0.5, 0.0], dtype=np.float32)
        missing = Parameter(np.zeros(2))
        assert clip_grad_norm([live, missing], max_norm=1.0) == pytest.approx(
            0.5
        )


class TestSchedules:
    def test_constant(self):
        assert ConstantLR().multiplier(0) == 1.0
        assert ConstantLR().multiplier(1000) == 1.0

    def test_warmup_ramps_linearly(self):
        sched = WarmupCosineLR(warmup_steps=10, total_steps=100)
        assert sched.multiplier(0) == pytest.approx(0.1)
        assert sched.multiplier(9) == pytest.approx(1.0)

    def test_cosine_decays_to_min(self):
        sched = WarmupCosineLR(warmup_steps=0, total_steps=100, min_mult=0.1)
        assert sched.multiplier(0) == pytest.approx(1.0, abs=1e-3)
        assert sched.multiplier(100) == pytest.approx(0.1, abs=1e-3)
        assert sched.multiplier(200) == pytest.approx(0.1, abs=1e-3)

    def test_step_lr(self):
        sched = StepLR(step_size=10, gamma=0.5)
        assert sched.multiplier(0) == 1.0
        assert sched.multiplier(10) == 0.5
        assert sched.multiplier(25) == 0.25

    def test_apply_updates_optimizer(self):
        p = quadratic_param()
        opt = SGD([p], lr=1.0)
        sched = StepLR(step_size=1, gamma=0.1)
        lr = sched.apply(opt, base_lr=1.0, step=2)
        assert opt.lr == pytest.approx(0.01)
        assert lr == pytest.approx(0.01)

    def test_invalid_schedule_args(self):
        with pytest.raises(ValueError):
            WarmupCosineLR(0, 0)
        with pytest.raises(ValueError):
            StepLR(0)
