"""Tests for sampling strategies and model serialization."""

import os

import numpy as np
import pytest

from repro.nn import (
    TransformerConfig,
    TransformerLM,
    greedy,
    load_config,
    load_model,
    load_state,
    sample_temperature,
    sample_token,
    sample_top_k,
    sample_top_p,
    save_model,
)

LOGITS = np.array([0.1, 3.0, 1.0, -2.0, 2.0], dtype=np.float32)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestGreedy:
    def test_picks_argmax(self):
        assert greedy(LOGITS) == 1


class TestTemperature:
    def test_zero_temperature_is_greedy(self):
        assert sample_temperature(LOGITS, rng(), temperature=0.0) == 1

    def test_low_temperature_concentrates(self):
        picks = [sample_temperature(LOGITS, rng(i), 0.05) for i in range(50)]
        assert picks.count(1) >= 48

    def test_high_temperature_spreads(self):
        picks = {sample_temperature(LOGITS, rng(i), 100.0) for i in range(200)}
        assert len(picks) >= 4

    def test_reproducible(self):
        assert sample_temperature(LOGITS, rng(3)) == sample_temperature(
            LOGITS, rng(3)
        )


class TestTopK:
    def test_k1_is_greedy(self):
        for seed in range(10):
            assert sample_top_k(LOGITS, rng(seed), k=1) == 1

    def test_samples_only_top_k(self):
        picks = {sample_top_k(LOGITS, rng(i), k=2, temperature=5.0)
                 for i in range(100)}
        assert picks <= {1, 4}

    def test_k_larger_than_vocab_ok(self):
        assert 0 <= sample_top_k(LOGITS, rng(0), k=100) < 5

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            sample_top_k(LOGITS, rng(0), k=0)


class TestTopP:
    def test_tiny_p_is_near_greedy(self):
        picks = {sample_top_p(LOGITS, rng(i), p=0.01) for i in range(30)}
        assert picks == {1}

    def test_p_one_allows_all(self):
        picks = {sample_top_p(LOGITS, rng(i), p=1.0, temperature=50.0)
                 for i in range(300)}
        assert len(picks) >= 4

    def test_nucleus_excludes_tail(self):
        # With p=0.8 the -2.0 logit (tiny mass) must never appear.
        picks = [sample_top_p(LOGITS, rng(i), p=0.8) for i in range(200)]
        assert 3 not in picks

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            sample_top_p(LOGITS, rng(0), p=0.0)
        with pytest.raises(ValueError):
            sample_top_p(LOGITS, rng(0), p=1.5)


class TestSampleToken:
    def test_mutually_exclusive_filters(self):
        with pytest.raises(ValueError):
            sample_token(LOGITS, rng(0), top_k=2, top_p=0.9)

    def test_dispatch(self):
        assert 0 <= sample_token(LOGITS, rng(0), top_k=2) < 5
        assert 0 <= sample_token(LOGITS, rng(0), top_p=0.9) < 5
        assert 0 <= sample_token(LOGITS, rng(0)) < 5

    def test_generate_with_top_k(self, pretrained_model):
        toks = pretrained_model.generate([1, 2], 5, top_k=3,
                                         rng=np.random.default_rng(0))
        assert len(toks) == 5


class TestSerialization:
    def config(self):
        return TransformerConfig(vocab_size=16, dim=16, num_layers=2,
                                 num_heads=2, max_len=32, seed=3)

    def test_roundtrip(self, tmp_path):
        model = TransformerLM(self.config())
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        restored = load_model(path)
        ids = np.zeros((1, 4), dtype=np.int64)
        assert np.allclose(model(ids).data, restored(ids).data, atol=1e-6)
        assert restored.config == model.config

    def test_load_state_only(self, tmp_path):
        model = TransformerLM(self.config())
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        state = load_state(path)
        assert set(state) == set(model.state_dict())

    def test_load_config(self, tmp_path):
        model = TransformerLM(self.config())
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        assert load_config(path) == self.config()

    def test_load_model_without_config_raises(self, tmp_path):
        from repro.nn import Linear

        path = str(tmp_path / "linear.npz")
        save_model(Linear(4, 4), path)
        with pytest.raises(ValueError):
            load_model(path)

    def test_creates_directories(self, tmp_path):
        model = TransformerLM(self.config())
        path = str(tmp_path / "nested" / "dir" / "model.npz")
        save_model(model, path)
        assert os.path.exists(path)
