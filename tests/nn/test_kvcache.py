"""Tests for KVCache lifecycle: append validation, truncate, reset."""

import numpy as np
import pytest

from repro.nn.attention import KVCache


def entry(batch=1, heads=2, seq=3, head_dim=4, fill=1.0):
    k = np.full((batch, heads, seq, head_dim), fill, dtype=np.float32)
    return k, k + 1.0


class TestAppendValidation:
    def test_rejects_non_4d(self):
        cache = KVCache()
        bad = np.zeros((2, 3, 4))
        with pytest.raises(ValueError, match="4-D"):
            cache.append(bad, bad)

    def test_rejects_kv_shape_mismatch(self):
        cache = KVCache()
        k, _ = entry(seq=3)
        _, v = entry(seq=2)
        with pytest.raises(ValueError, match="mismatch"):
            cache.append(k, v)

    def test_rejects_inconsistent_followup(self):
        cache = KVCache()
        cache.append(*entry(heads=2))
        with pytest.raises(ValueError, match="does not\\s+match cached"):
            cache.append(*entry(heads=4))

    def test_growing_along_seq_ok(self):
        cache = KVCache()
        cache.append(*entry(seq=3))
        cache.append(*entry(seq=1))
        assert cache.length == 4


class TestTruncate:
    def cache(self):
        c = KVCache()
        k = np.arange(1 * 2 * 5 * 4, dtype=np.float32).reshape(1, 2, 5, 4)
        c.append(k, k * 2)
        return c, k

    def test_keeps_prefix(self):
        cache, k = self.cache()
        cache.truncate(3)
        assert cache.length == 3
        np.testing.assert_array_equal(cache.k, k[:, :, :3, :])
        np.testing.assert_array_equal(cache.v, k[:, :, :3, :] * 2)

    def test_truncate_to_full_length_is_noop(self):
        cache, k = self.cache()
        cache.truncate(5)
        assert cache.length == 5
        np.testing.assert_array_equal(cache.k, k)

    def test_truncate_to_zero_empties(self):
        cache, _ = self.cache()
        cache.truncate(0)
        assert cache.length == 0
        assert cache.k is None and cache.v is None

    def test_out_of_range_raises(self):
        cache, _ = self.cache()
        with pytest.raises(ValueError, match="out of range"):
            cache.truncate(-1)
        with pytest.raises(ValueError, match="out of range"):
            cache.truncate(6)

    def test_empty_cache_truncate_zero_ok(self):
        cache = KVCache()
        cache.truncate(0)
        assert cache.length == 0

    def test_append_after_truncate(self):
        cache, _ = self.cache()
        cache.truncate(2)
        cache.append(*entry(seq=1))
        assert cache.length == 3


class TestReset:
    def test_reset_empties(self):
        cache = KVCache()
        cache.append(*entry())
        cache.reset()
        assert cache.length == 0
        assert cache.k is None

    def test_reusable_with_new_geometry(self):
        # After reset, a block may serve a request with another batch
        # size or head count — the pool relies on this.
        cache = KVCache()
        cache.append(*entry(heads=2))
        cache.reset()
        cache.append(*entry(heads=4))
        assert cache.k.shape[1] == 4


class TestClone:
    def test_clone_is_independent(self):
        cache = KVCache()
        cache.append(*entry(seq=2))
        copy = cache.clone()
        copy.append(*entry(seq=1))
        assert cache.length == 2
        assert copy.length == 3
        cache.k[...] = -1.0
        assert not np.any(copy.k[:, :, :2] == -1.0)

    def test_clone_of_empty(self):
        assert KVCache().clone().length == 0
