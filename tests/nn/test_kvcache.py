"""Tests for KVCache lifecycle: append validation, truncate, reset."""

import numpy as np
import pytest

from repro.nn.attention import KVCache


def entry(batch=1, heads=2, seq=3, head_dim=4, fill=1.0):
    k = np.full((batch, heads, seq, head_dim), fill, dtype=np.float32)
    return k, k + 1.0


class TestAppendValidation:
    def test_rejects_non_4d(self):
        cache = KVCache()
        bad = np.zeros((2, 3, 4))
        with pytest.raises(ValueError, match="4-D"):
            cache.append(bad, bad)

    def test_rejects_kv_shape_mismatch(self):
        cache = KVCache()
        k, _ = entry(seq=3)
        _, v = entry(seq=2)
        with pytest.raises(ValueError, match="mismatch"):
            cache.append(k, v)

    def test_rejects_inconsistent_followup(self):
        cache = KVCache()
        cache.append(*entry(heads=2))
        with pytest.raises(ValueError, match="does not\\s+match cached"):
            cache.append(*entry(heads=4))

    def test_growing_along_seq_ok(self):
        cache = KVCache()
        cache.append(*entry(seq=3))
        cache.append(*entry(seq=1))
        assert cache.length == 4


class TestTruncate:
    def cache(self):
        c = KVCache()
        k = np.arange(1 * 2 * 5 * 4, dtype=np.float32).reshape(1, 2, 5, 4)
        c.append(k, k * 2)
        return c, k

    def test_keeps_prefix(self):
        cache, k = self.cache()
        cache.truncate(3)
        assert cache.length == 3
        np.testing.assert_array_equal(cache.k, k[:, :, :3, :])
        np.testing.assert_array_equal(cache.v, k[:, :, :3, :] * 2)

    def test_truncate_to_full_length_is_noop(self):
        cache, k = self.cache()
        cache.truncate(5)
        assert cache.length == 5
        np.testing.assert_array_equal(cache.k, k)

    def test_truncate_to_zero_empties(self):
        cache, _ = self.cache()
        cache.truncate(0)
        assert cache.length == 0
        assert cache.k is None and cache.v is None

    def test_out_of_range_raises(self):
        cache, _ = self.cache()
        with pytest.raises(ValueError, match="out of range"):
            cache.truncate(-1)
        with pytest.raises(ValueError, match="out of range"):
            cache.truncate(6)

    def test_empty_cache_truncate_zero_ok(self):
        cache = KVCache()
        cache.truncate(0)
        assert cache.length == 0

    def test_append_after_truncate(self):
        cache, _ = self.cache()
        cache.truncate(2)
        cache.append(*entry(seq=1))
        assert cache.length == 3


class TestReset:
    def test_reset_empties(self):
        cache = KVCache()
        cache.append(*entry())
        cache.reset()
        assert cache.length == 0
        assert cache.k is None

    def test_reusable_with_new_geometry(self):
        # After reset, a block may serve a request with another batch
        # size or head count — the pool relies on this.
        cache = KVCache()
        cache.append(*entry(heads=2))
        cache.reset()
        cache.append(*entry(heads=4))
        assert cache.k.shape[1] == 4


class TestClone:
    def test_clone_is_independent(self):
        cache = KVCache()
        cache.append(*entry(seq=2))
        copy = cache.clone()
        copy.append(*entry(seq=1))
        assert cache.length == 2
        assert copy.length == 3
        cache.k[...] = -1.0
        assert not np.any(copy.k[:, :, :2] == -1.0)

    def test_clone_of_empty(self):
        assert KVCache().clone().length == 0


# ---------------------------------------------------------------------------
# SharedKVCacheView: cache views over immutable shared prefix blocks
# ---------------------------------------------------------------------------
from repro.nn.attention import SharedKVCacheView  # noqa: E402


def shared_arrays(seq=4, heads=2, head_dim=4):
    k = np.arange(1 * heads * seq * head_dim, dtype=np.float32)
    k = k.reshape(1, heads, seq, head_dim)
    return k, k * 2.0


class TestSharedViewBasics:
    def test_reads_like_a_plain_cache(self):
        k, v = shared_arrays(seq=4)
        view = SharedKVCacheView(k, v)
        assert view.length == 4
        np.testing.assert_array_equal(view.k, k)
        np.testing.assert_array_equal(view.v, v)

    def test_append_lands_in_private_tail(self):
        k, v = shared_arrays(seq=3)
        view = SharedKVCacheView(k, v)
        view.append(*entry(seq=2))
        assert view.shared_length == 3
        assert view.tail_length == 2
        assert view.length == 5
        np.testing.assert_array_equal(view.k[:, :, :3, :], k)

    def test_never_attached_view_is_plain_private(self):
        view = SharedKVCacheView()
        assert view.length == 0
        assert not view.detached
        view.append(*entry(seq=2))
        assert view.tail_length == 2

    def test_mismatched_shared_shapes_raise(self):
        k, _ = shared_arrays(seq=3)
        _, v = shared_arrays(seq=2)
        with pytest.raises(ValueError, match="matching 4-D"):
            SharedKVCacheView(k, v)

    def test_append_validation_matches_plain_cache(self):
        k, v = shared_arrays(seq=3, heads=2)
        view = SharedKVCacheView(k, v)
        with pytest.raises(ValueError, match="4-D"):
            view.append(np.zeros((2, 3, 4)), np.zeros((2, 3, 4)))
        with pytest.raises(ValueError, match="does not\\s+match cached"):
            view.append(*entry(heads=4))


class TestSharedViewTruncate:
    """Regression tests for the rollback edge cases: truncating into a
    shared-backed view must copy-on-write, never mutate the shared block."""

    def test_truncate_within_tail_keeps_shared(self):
        k, v = shared_arrays(seq=3)
        view = SharedKVCacheView(k, v)
        view.append(*entry(seq=3))
        view.truncate(4)
        assert view.shared_length == 3
        assert view.tail_length == 1
        assert not view.detached

    def test_truncate_into_shared_copies_on_write(self):
        k, v = shared_arrays(seq=4)
        before_k, before_v = k.copy(), v.copy()
        view = SharedKVCacheView(k, v)
        view.append(*entry(seq=1))
        view.truncate(2)
        assert view.detached
        assert view.length == 2
        np.testing.assert_array_equal(view.k, before_k[:, :, :2, :])
        # The shared arrays themselves are untouched for other lessees.
        np.testing.assert_array_equal(k, before_k)
        np.testing.assert_array_equal(v, before_v)
        # Writes after COW go to private storage, still not the block.
        view.append(*entry(seq=1, fill=9.0))
        np.testing.assert_array_equal(k, before_k)

    def test_truncate_to_zero_detaches_and_empties(self):
        k, v = shared_arrays(seq=3)
        view = SharedKVCacheView(k, v)
        view.truncate(0)
        assert view.length == 0
        assert view.detached
        assert view.k is None and view.v is None
        np.testing.assert_array_equal(k, shared_arrays(seq=3)[0])

    def test_truncate_out_of_range_raises(self):
        k, v = shared_arrays(seq=3)
        view = SharedKVCacheView(k, v)
        with pytest.raises(ValueError, match="out of range"):
            view.truncate(4)
        with pytest.raises(ValueError, match="out of range"):
            view.truncate(-1)

    def test_on_detach_fires_exactly_once(self):
        k, v = shared_arrays(seq=3)
        calls = []
        view = SharedKVCacheView(k, v, on_detach=lambda: calls.append(1))
        view.truncate(1)
        view.reset()
        view.truncate(0)
        assert calls == [1]

    def test_reset_detaches(self):
        k, v = shared_arrays(seq=3)
        view = SharedKVCacheView(k, v)
        view.reset()
        assert view.detached
        assert view.length == 0


class TestSharedViewLifecycle:
    def test_clone_is_plain_and_independent(self):
        k, v = shared_arrays(seq=2)
        view = SharedKVCacheView(k, v)
        view.append(*entry(seq=1))
        copy = view.clone()
        assert isinstance(copy, KVCache)
        assert not isinstance(copy, SharedKVCacheView)
        copy.k[...] = -1.0
        np.testing.assert_array_equal(k, shared_arrays(seq=2)[0])

    def test_rebase_swaps_in_longer_shared_arrays(self):
        k, v = shared_arrays(seq=2)
        view = SharedKVCacheView(k, v)
        view.append(*entry(seq=2))
        full_k, full_v = view.k.copy(), view.v.copy()
        view.rebase(full_k, full_v)
        assert view.shared_length == 4
        assert view.tail_length == 0
        np.testing.assert_array_equal(view.k, full_k)

    def test_rebase_length_mismatch_raises(self):
        view = SharedKVCacheView(*shared_arrays(seq=2))
        with pytest.raises(ValueError, match="rebase length"):
            view.rebase(*shared_arrays(seq=3))

    def test_rebase_after_detach_raises(self):
        view = SharedKVCacheView(*shared_arrays(seq=2))
        view.truncate(1)
        with pytest.raises(ValueError, match="detached"):
            view.rebase(*shared_arrays(seq=1))
