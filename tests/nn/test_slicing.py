"""Structural rotate-and-slice: numerics, spec, serialization, trials."""

import os

import numpy as np
import pytest

from repro.nn import (
    SliceSpec,
    TransformerLM,
    apply_slice_structure,
    block_slice_trial,
    is_sliced,
    load_model,
    load_slice_spec,
    pca_rotation,
    residual_dims,
    rotate_and_slice,
    save_model,
    slice_dim,
    slice_spec,
)
from repro.nn.transforms import InputCapture, TransformedLinear
from repro.tensor import no_grad

from ..conftest import small_config

DIM = 48  # small_config's hidden width
VOCAB = 32


def _calib(batch=16, seq=24, seed=42):
    return np.random.default_rng(seed).integers(0, VOCAB, (batch, seq))


def _clone(state):
    model = TransformerLM(small_config())
    model.load_state_dict(state)
    return model


def _logits(model, ids):
    with no_grad():
        return model(ids).data


class TestNumerics:
    def test_pca_rotation_orthogonal_descending(self):
        acts = np.random.default_rng(0).normal(size=(200, 12))
        q, energy = pca_rotation(acts)
        assert np.allclose(q.T @ q, np.eye(12), atol=1e-10)
        assert np.all(np.diff(energy) <= 1e-9)
        assert np.all(energy >= 0.0)

    def test_rotation_only_pass_is_output_identical(self, pretrained_model):
        """Ratio 1.0 rotates every junction but slices nothing — the
        model must compute the same function up to float reassociation."""
        ids = _calib(4, 16, seed=1)
        base = _logits(pretrained_model, ids)
        spec = rotate_and_slice(pretrained_model, _calib())
        assert is_sliced(pretrained_model)
        assert spec.blocks == ((DIM, DIM, DIM),) * pretrained_model.num_layers
        rotated = _logits(pretrained_model, ids)
        scale = np.abs(base).max()
        assert np.allclose(base, rotated, atol=1e-4 * scale)

    def test_sliced_model_stays_close(self, pretrained_model, pretrain_corpus):
        from repro.eval import model_perplexity

        base_ppl = model_perplexity(
            pretrained_model, pretrain_corpus, batch_size=8, seq_len=24
        )
        rotate_and_slice(pretrained_model, _calib(), 0.5)
        sliced_ppl = model_perplexity(
            pretrained_model, pretrain_corpus, batch_size=8, seq_len=24
        )
        assert sliced_ppl <= base_ppl * 1.05

    def test_kv_cache_decode_matches_full_forward(self, pretrained_model):
        rotate_and_slice(pretrained_model, _calib(), 0.5)
        ids = _calib(2, 12, seed=3)
        full = _logits(pretrained_model, ids)
        caches = pretrained_model.new_caches()
        with no_grad():
            step = pretrained_model(ids[:, :6], caches=caches).data
            for t in range(6, ids.shape[1]):
                step = pretrained_model(ids[:, t : t + 1], caches=caches).data
        assert np.allclose(full[:, -1], step[:, -1], atol=1e-5)


class TestStructure:
    def test_shapes_shrink(self, pretrained_model):
        spec = rotate_and_slice(pretrained_model, _calib(), 0.5)
        assert spec.blocks == ((24, 24, 24),) * pretrained_model.num_layers
        block = pretrained_model.blocks[0]
        assert block.attn.q_proj.in_features == 24
        assert block.attn.q_proj.weight.data.shape == (24, DIM)
        assert block.attn.o_proj.weight.data.shape == (DIM, 24)
        assert block.mlp.gate_proj.weight.data.shape[0] == 24
        assert block.mlp.down_proj.weight.data.shape[1] == 24
        # Attention internals keep full width.
        assert block.attn.q_proj.out_features == DIM
        assert pretrained_model.embed.weight.data.shape == (VOCAB, 24)
        # Tied config gets untied: rotated bases differ.
        assert spec.untied and pretrained_model.lm_head is not None
        assert pretrained_model.lm_head.weight.data.shape == (24, VOCAB)

    def test_spec_derivation_and_residual_dims(self, pretrained_model):
        assert slice_spec(pretrained_model) is None
        layers = pretrained_model.num_layers
        assert residual_dims(pretrained_model) == [DIM] * (2 * layers + 1)
        spec = rotate_and_slice(pretrained_model, _calib(), 0.5)
        assert slice_spec(pretrained_model) == spec
        assert residual_dims(pretrained_model) == [24] * (2 * layers + 1)
        assert spec.hw_dims() == {i: (24, 24, 24) for i in range(layers)}
        assert spec.head_in_dim == 24

    def test_per_block_ratios(self, pretrained_model):
        layers = pretrained_model.num_layers
        ratios = [1.0] * layers
        ratios[-1] = 0.5
        spec = rotate_and_slice(pretrained_model, _calib(), ratios)
        assert spec.blocks[-1] == (DIM, 24, 24)
        assert spec.blocks[0] == (DIM, DIM, DIM)
        # Output still computes.
        _logits(pretrained_model, _calib(2, 8, seed=5))

    def test_slice_dim_rounding(self):
        assert slice_dim(48, 1.0) == 48
        assert slice_dim(48, 0.5) == 24
        assert slice_dim(48, 0.5, round_to=16) == 32
        assert slice_dim(48, 0.3, round_to=16) == 16
        assert slice_dim(48, 0.01) == 8  # clamps to one rounding step
        with pytest.raises(ValueError):
            slice_dim(48, 0.0)
        with pytest.raises(ValueError):
            slice_dim(48, 1.5)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SliceSpec(dim=48, blocks=((24, 24, 24), (32, 32, 32)), untied=True)
        with pytest.raises(ValueError):
            SliceSpec(dim=48, blocks=((24, 64, 24),), untied=True)
        spec = SliceSpec(dim=48, blocks=((24, 24, 16),), untied=True)
        assert SliceSpec.from_json(spec.to_json()) == spec


class TestErrors:
    def test_double_slice_refused(self, pretrained_model):
        rotate_and_slice(pretrained_model, _calib(), 0.5)
        with pytest.raises(ValueError, match="already sliced"):
            rotate_and_slice(pretrained_model, _calib(), 0.5)

    def test_wrapped_linears_refused(self, pretrained_model):
        attn = pretrained_model.blocks[0].attn
        attn.q_proj = TransformedLinear(attn.q_proj, [InputCapture()])
        with pytest.raises(ValueError, match="plain Linear"):
            rotate_and_slice(pretrained_model, _calib(), 0.5)

    def test_ratio_count_mismatch(self, pretrained_model):
        with pytest.raises(ValueError, match="one ratio per block"):
            rotate_and_slice(pretrained_model, _calib(), [0.5, 0.5])

    def test_apply_structure_mismatch(self, pretrained_model):
        spec = SliceSpec(dim=64, blocks=((32, 32, 32),), untied=True)
        with pytest.raises(ValueError, match="does not match"):
            apply_slice_structure(pretrained_model, spec)


class TestSerialization:
    def test_sliced_checkpoint_reloads_bit_identically(
        self, pretrained_model, tmp_path
    ):
        spec = rotate_and_slice(pretrained_model, _calib(), 0.5)
        path = os.path.join(tmp_path, "sliced.npz")
        save_model(pretrained_model, path)
        assert load_slice_spec(path) == spec
        reloaded = load_model(path)
        assert slice_spec(reloaded) == spec
        saved = pretrained_model.state_dict()
        restored = reloaded.state_dict()
        assert sorted(saved) == sorted(restored)
        for key in saved:
            assert np.array_equal(saved[key], restored[key]), key
        ids = _calib(2, 10, seed=7)
        assert np.array_equal(
            _logits(pretrained_model, ids), _logits(reloaded, ids)
        )

    def test_unsliced_checkpoint_has_no_spec(self, pretrained_model, tmp_path):
        path = os.path.join(tmp_path, "plain.npz")
        save_model(pretrained_model, path)
        assert load_slice_spec(path) is None
        assert not is_sliced(load_model(path))


class TestBlockTrial:
    def test_trial_restores_exactly(self, pretrained_state):
        model = _clone(pretrained_state)
        before = {k: v.copy() for k, v in model.state_dict().items()}
        ids = _calib(2, 10, seed=9)
        base = _logits(model, ids)
        with block_slice_trial(model, 2, 0.5, _calib()):
            assert "attn_shortcut_Q" in model.blocks[2]._buffers
            trial = _logits(model, ids)
            assert model.blocks[2].attn.o_proj.out_features == 24
        after = model.state_dict()
        assert sorted(before) == sorted(after)
        for key in before:
            assert np.array_equal(before[key], after[key]), key
        assert not is_sliced(model)
        assert np.array_equal(base, _logits(model, ids))
        # The trial genuinely perturbed the forward.
        assert not np.array_equal(base, trial)

    def test_trial_ratio_one_is_noop(self, pretrained_model):
        with block_slice_trial(pretrained_model, 0, 1.0, _calib()):
            assert not is_sliced(pretrained_model)

    def test_trial_restores_on_error(self, pretrained_state):
        model = _clone(pretrained_state)
        before = model.state_dict()
        with pytest.raises(RuntimeError):
            with block_slice_trial(model, 1, 0.5, _calib()):
                raise RuntimeError("boom")
        after = model.state_dict()
        for key in before:
            assert np.array_equal(before[key], after[key]), key
