"""Tests for Adafactor and beam-search decoding."""

import numpy as np
import pytest

from repro.nn import Adafactor, Parameter, beam_search
from repro.tensor import Tensor


class TestAdafactor:
    def quadratic(self, shape, seed=0):
        return Parameter(np.random.default_rng(seed).standard_normal(shape) * 2)

    def run_steps(self, opt, p, steps=300):
        for _ in range(steps):
            loss = (p * p).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        return float((p.data**2).sum())

    def test_converges_matrix(self):
        p = self.quadratic((6, 4))
        assert self.run_steps(Adafactor([p], lr=0.05), p) < 1e-2

    def test_converges_vector(self):
        p = self.quadratic((8,))
        assert self.run_steps(Adafactor([p], lr=0.05), p) < 1e-2

    def test_factored_state_smaller_than_adam(self):
        from repro.nn import Adam

        p = self.quadratic((64, 64))
        ada = Adafactor([p], lr=0.01)
        adam = Adam([p], lr=0.01)
        assert ada.state_bytes() < adam.state_bytes() / 10

    def test_state_floats_for_matrix(self):
        p = self.quadratic((10, 20))
        opt = Adafactor([p], lr=0.01)
        assert opt.state_floats_per_param == pytest.approx(30 / 200)

    def test_vector_fallback_full_state(self):
        p = self.quadratic((16,))
        opt = Adafactor([p], lr=0.01)
        assert opt.state_floats_per_param == pytest.approx(1.0)

    def test_rms_clipping_bounds_step(self):
        p = Parameter(np.ones((4, 4)))
        opt = Adafactor([p], lr=1.0, clip_threshold=1.0)
        p.grad = np.full((4, 4), 100.0, dtype=np.float32)
        before = p.data.copy()
        opt.step()
        step = np.abs(p.data - before)
        # RMS of the update is clipped to <= 1, times lr.
        assert float(np.sqrt((step**2).mean())) <= 1.0 + 1e-5

    def test_trainer_accepts_adafactor(self, pretrained_model, adapt_corpus):
        from repro.adaptive import AdaptiveLayerTrainer, AdaptiveTuningConfig
        from repro.data import lm_batches

        trainer = AdaptiveLayerTrainer(
            pretrained_model,
            AdaptiveTuningConfig(optimizer="adafactor", lr=5e-3, window=2),
        )
        stats = trainer.train(
            lm_batches(adapt_corpus, 4, 16, 8, np.random.default_rng(0))
        )
        assert stats[-1].loss < stats[0].loss * 1.2  # moving, not diverging
        # Optimizer memory reported as sub-linear.
        report = trainer.memory_report(4, 16)
        assert report.optimizer_bytes < report.gradient_bytes


class TestBeamSearch:
    def test_returns_requested_length(self, pretrained_model):
        toks = beam_search(pretrained_model, [1, 2, 3], 5, beam_width=3)
        assert len(toks) == 5
        assert all(0 <= t < 32 for t in toks)

    def test_beam1_equals_greedy(self, pretrained_model):
        greedy_toks = pretrained_model.generate([1, 2, 3], 5, greedy=True)
        beam_toks = beam_search(pretrained_model, [1, 2, 3], 5, beam_width=1)
        assert greedy_toks == beam_toks

    def test_wider_beam_no_worse_logprob(self, pretrained_model, pretrain_corpus):
        """The beam optimum's sequence log-prob must dominate greedy's."""
        from repro.tensor import nll_from_logits, no_grad

        prompt = [1, 2, 3]

        def seq_logprob(tokens):
            ids = np.array([prompt + tokens], dtype=np.int64)
            with no_grad():
                logits = pretrained_model(ids[:, :-1])
            nll = nll_from_logits(logits, ids[:, 1:])[0]
            return -float(nll[len(prompt) - 1:].sum())

        greedy_lp = seq_logprob(pretrained_model.generate(prompt, 6, greedy=True))
        beam_lp = seq_logprob(
            beam_search(pretrained_model, prompt, 6, beam_width=4,
                        length_penalty=0.0)
        )
        assert beam_lp >= greedy_lp - 1e-4

    def test_invalid_beam_width(self, pretrained_model):
        with pytest.raises(ValueError):
            beam_search(pretrained_model, [1], 3, beam_width=0)

    def test_single_token(self, pretrained_model):
        toks = beam_search(pretrained_model, [1, 2], 1, beam_width=3)
        assert len(toks) == 1

    def test_restores_training_mode(self, pretrained_model):
        pretrained_model.train()
        beam_search(pretrained_model, [1], 2, beam_width=2)
        assert pretrained_model.training
