"""Shared fixtures: a small pretrained model + its corpora.

The model is pretrained once per test session (a few seconds) and cloned
via state_dict for tests that mutate it.
"""

import numpy as np
import pytest

from repro.data import MarkovChainCorpus, lm_batches
from repro.nn import AdamW, TransformerConfig, TransformerLM
from repro.tensor import cross_entropy

VOCAB = 32
PRETRAIN_SEED = 0
ADAPT_SEED = 1


def small_config(**overrides) -> TransformerConfig:
    defaults = dict(
        vocab_size=VOCAB, dim=48, num_layers=6, num_heads=4, max_len=64, seed=0
    )
    defaults.update(overrides)
    return TransformerConfig(**defaults)


@pytest.fixture(scope="session")
def pretrain_corpus():
    return MarkovChainCorpus(vocab_size=VOCAB, order=1, seed=PRETRAIN_SEED)


@pytest.fixture(scope="session")
def adapt_corpus():
    return MarkovChainCorpus(vocab_size=VOCAB, order=1, seed=ADAPT_SEED)


@pytest.fixture(scope="session")
def pretrained_state(pretrain_corpus):
    """State dict of a model trained close to the corpus entropy floor."""
    model = TransformerLM(small_config())
    rng = np.random.default_rng(0)
    opt = AdamW(model.parameters(), lr=3e-3)
    for inputs, targets in lm_batches(pretrain_corpus, 8, 32, 100, rng):
        loss = cross_entropy(model(inputs), targets)
        opt.zero_grad()
        loss.backward()
        opt.step()
    return model.state_dict()


@pytest.fixture
def pretrained_model(pretrained_state):
    """A fresh clone of the pretrained model (mutate freely)."""
    model = TransformerLM(small_config())
    model.load_state_dict(pretrained_state)
    return model
