"""Equivalence tests for the VotingCombiner logits-only fast path.

``combine_logits`` must be *bit-identical* to the full ``combined_logits``
path when given the same per-exit logits — the serving engine relies on
this to decode per-step without re-running exits over the full context.
"""

import numpy as np
import pytest

from repro.adaptive import ExitHeadSet, VotingCombiner
from repro.data import lm_batches
from repro.tensor import no_grad


@pytest.fixture
def calibrated(pretrained_model, pretrain_corpus):
    heads = ExitHeadSet(pretrained_model, exit_points=[2, 4])
    combiner = VotingCombiner(pretrained_model, heads)
    rng = np.random.default_rng(0)
    inputs, targets = next(lm_batches(pretrain_corpus, 4, 16, 1, rng))
    combiner.calibrate(inputs, targets)
    return combiner


def per_exit_arrays(combiner, ids):
    with no_grad():
        per_exit = combiner.exit_heads.all_logits(combiner.model, ids)
    return {p: t.data for p, t in per_exit.items()}


IDS = np.array([[1, 2, 3, 4, 5], [9, 8, 7, 6, 5]], dtype=np.int64)


class TestBitIdentity:
    def test_full_sequence(self, calibrated):
        reference = calibrated.combined_logits(IDS).data
        fast = calibrated.combine_logits(per_exit_arrays(calibrated, IDS))
        np.testing.assert_array_equal(fast, reference)

    def test_last_position_slice(self, calibrated):
        # Mixing commutes with slicing: combining last-position logits
        # gives exactly the last position of the full combination.
        reference = calibrated.combined_logits(IDS).data[:, -1, :]
        last = {
            p: arr[:, -1, :]
            for p, arr in per_exit_arrays(calibrated, IDS).items()
        }
        np.testing.assert_array_equal(
            calibrated.combine_logits(last), reference
        )

    def test_confidence_strategy(self, pretrained_model, pretrain_corpus):
        heads = ExitHeadSet(pretrained_model, exit_points=[2, 4])
        combiner = VotingCombiner(
            pretrained_model, heads, strategy="confidence"
        )
        reference = combiner.combined_logits(IDS).data
        fast = combiner.combine_logits(per_exit_arrays(combiner, IDS))
        np.testing.assert_array_equal(fast, reference)


class TestSubsets:
    def test_subset_weights_renormalize(self, calibrated):
        arrays = per_exit_arrays(calibrated, IDS)
        subset = [2, 4]
        mixed = calibrated.combine_logits(arrays, points=subset)
        w = {p: calibrated.weights[p] for p in subset}
        total = sum(w.values())
        expect = np.zeros_like(arrays[2], dtype=np.float64)
        for p in subset:
            probs = np.exp(arrays[p] - arrays[p].max(-1, keepdims=True))
            probs /= probs.sum(-1, keepdims=True)
            expect += (w[p] / total) * probs
        np.testing.assert_allclose(
            mixed, np.log(expect + 1e-12), rtol=1e-6, atol=1e-7
        )

    def test_full_subset_equals_default(self, calibrated):
        arrays = per_exit_arrays(calibrated, IDS)
        all_points = calibrated.exit_points
        by_subset = calibrated.combine_logits(arrays, points=all_points)
        by_default = calibrated.combine_logits(arrays)
        # Same mixture; the subset path renormalizes (total weight is 1).
        np.testing.assert_allclose(by_subset, by_default, atol=1e-9)

    def test_unknown_points_raise(self, calibrated):
        arrays = per_exit_arrays(calibrated, IDS)
        with pytest.raises(ValueError, match="no known exit points"):
            calibrated.combine_logits(arrays, points=[99])

    def test_best_strategy_zero_mass_falls_back(
        self, pretrained_model, pretrain_corpus
    ):
        # With winner-take-all weights, a shallow subset that excludes
        # the winner has zero calibrated mass; the fallback picks the
        # subset's best validation loss instead of dividing by zero.
        heads = ExitHeadSet(pretrained_model, exit_points=[2, 4])
        combiner = VotingCombiner(pretrained_model, heads, strategy="best")
        rng = np.random.default_rng(0)
        inputs, targets = next(lm_batches(pretrain_corpus, 4, 16, 1, rng))
        combiner.calibrate(inputs, targets)
        winner = max(combiner.weights, key=combiner.weights.get)
        subset = [p for p in [2, 4] if p != winner] or [2]
        if combiner.weights[subset[0]] > 0:
            pytest.skip("winner landed inside the shallow subset")
        arrays = per_exit_arrays(combiner, IDS)
        mixed = combiner.combine_logits(arrays, points=subset)
        best = min(subset, key=lambda p: combiner.validation_losses[p])
        probs = np.exp(arrays[best] - arrays[best].max(-1, keepdims=True))
        probs /= probs.sum(-1, keepdims=True)
        np.testing.assert_allclose(mixed, np.log(probs + 1e-12), atol=1e-12)


class TestErrors:
    def test_uncalibrated_raises(self, pretrained_model):
        heads = ExitHeadSet(pretrained_model, exit_points=[2])
        combiner = VotingCombiner(pretrained_model, heads)
        with pytest.raises(RuntimeError, match="calibrate"):
            combiner.combine_logits({2: np.zeros((1, 4))})
