"""Graph capture in the adaptive trainer.

Capturing the tuning-window step and replaying it must be invisible in
the numbers: the loss trajectory is bit-identical with capture on and
off, across window rotation, and the graph/arena counters prove the
replays actually happened.
"""

import numpy as np

from repro.adaptive import AdaptiveLayerTrainer, AdaptiveTuningConfig
from repro.data import lm_batches
from repro.nn import TransformerLM
from repro.obs import MetricsRegistry, use_registry

from ..conftest import small_config


def untied_model(state=None):
    model = TransformerLM(small_config(num_layers=4, tie_embeddings=False))
    if state is not None:
        model.load_state_dict(state)
    return model


def window_config(**overrides):
    defaults = dict(
        window=2, exit_points=[4], schedule="round_robin", lr=1e-3,
        optimizer_scope="window",
    )
    defaults.update(overrides)
    return AdaptiveTuningConfig(**defaults)


def train_batches(corpus, n, seed=0):
    return list(lm_batches(corpus, 4, 16, n, np.random.default_rng(seed)))


def run_losses(state, batches, **overrides):
    trainer = AdaptiveLayerTrainer(untied_model(state), window_config(**overrides))
    return [trainer.train_step(i, t).loss for i, t in batches]


class TestTrajectoryIdentity:
    def test_capture_is_bit_identical(self, adapt_corpus):
        state = untied_model().state_dict()
        batches = train_batches(adapt_corpus, 8)
        captured = run_losses(state, batches, graph_capture=True)
        traced = run_losses(state, batches, graph_capture=False)
        assert captured == traced

    def test_capture_identical_across_window_rotation(self, adapt_corpus):
        """Round-robin rotates the tuned window; each window captures its
        own graph and the trajectory still matches trace-every-step."""
        state = untied_model().state_dict()
        batches = train_batches(adapt_corpus, 6)
        captured = run_losses(state, batches, graph_capture=True, window=1)
        traced = run_losses(state, batches, graph_capture=False, window=1)
        assert captured == traced


class TestCounters:
    def test_steps_replay_after_first_capture(self, adapt_corpus):
        state = untied_model().state_dict()
        batches = train_batches(adapt_corpus, 8)
        reg = MetricsRegistry()
        with use_registry(reg):
            run_losses(state, batches, graph_capture=True)
        captures = reg.counter("tensor/graph/captures").value
        replays = reg.counter("tensor/graph/replays").value
        # One capture per distinct window config; every other step replays.
        assert 1 <= captures < len(batches)
        assert captures + replays == len(batches)
        # Each captured graph pins its buffers on first replay: the takes
        # land as fresh reservations or free-list hits depending on what
        # earlier graphs released into the process-global pool.
        arena_traffic = (
            reg.counter("tensor/arena/bytes_reserved").value
            + reg.counter("tensor/arena/reuse_hits").value
        )
        assert arena_traffic > 0

    def test_disabled_capture_never_captures(self, adapt_corpus):
        state = untied_model().state_dict()
        batches = train_batches(adapt_corpus, 4)
        reg = MetricsRegistry()
        with use_registry(reg):
            run_losses(state, batches, graph_capture=False)
        assert reg.counter("tensor/graph/captures").value == 0
        assert reg.counter("tensor/graph/replays").value == 0
