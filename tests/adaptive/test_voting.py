"""Tests for the adaptive layer voting combiner."""

import numpy as np
import pytest

from repro.adaptive import (
    AdaptiveLayerTrainer,
    AdaptiveTuningConfig,
    VotingCombiner,
)
from repro.data import lm_batches


@pytest.fixture
def tuned(pretrained_model, adapt_corpus):
    """Model after a short adaptive tuning run, with its exit heads."""
    trainer = AdaptiveLayerTrainer(
        pretrained_model,
        AdaptiveTuningConfig(window=2, exit_points=[2, 4, 6], lr=2e-3),
    )
    trainer.train(
        lm_batches(adapt_corpus, 4, 24, 20, np.random.default_rng(0))
    )
    return pretrained_model, trainer


def calib_batch(corpus, seed=99):
    return next(lm_batches(corpus, 4, 24, 1, np.random.default_rng(seed)))


class TestCalibration:
    def test_unknown_strategy_raises(self, tuned):
        model, trainer = tuned
        with pytest.raises(ValueError):
            VotingCombiner(model, trainer.exit_heads, strategy="bogus")

    def test_calibrated_weights_sum_to_one(self, tuned, adapt_corpus):
        model, trainer = tuned
        voter = VotingCombiner(model, trainer.exit_heads)
        weights = voter.calibrate(*calib_batch(adapt_corpus))
        assert sum(weights.values()) == pytest.approx(1.0)
        assert set(weights) == {2, 4, 6}

    def test_best_strategy_one_hot(self, tuned, adapt_corpus):
        model, trainer = tuned
        voter = VotingCombiner(model, trainer.exit_heads, strategy="best")
        weights = voter.calibrate(*calib_batch(adapt_corpus))
        assert sorted(weights.values()) == pytest.approx([0.0, 0.0, 1.0])

    def test_uniform_strategy(self, tuned, adapt_corpus):
        model, trainer = tuned
        voter = VotingCombiner(model, trainer.exit_heads, strategy="uniform")
        weights = voter.calibrate(*calib_batch(adapt_corpus))
        assert all(w == pytest.approx(1 / 3) for w in weights.values())

    def test_lower_loss_exit_gets_higher_weight(self, tuned, adapt_corpus):
        model, trainer = tuned
        voter = VotingCombiner(model, trainer.exit_heads, temperature=0.5)
        weights = voter.calibrate(*calib_batch(adapt_corpus))
        losses = voter.validation_losses
        best_exit = min(losses, key=losses.get)
        assert weights[best_exit] == max(weights.values())


class TestCombinedLogits:
    def test_requires_calibration(self, tuned):
        model, trainer = tuned
        voter = VotingCombiner(model, trainer.exit_heads)
        with pytest.raises(RuntimeError):
            voter.combined_logits(np.zeros((1, 4), dtype=np.int64))

    def test_output_is_log_distribution(self, tuned, adapt_corpus):
        model, trainer = tuned
        voter = VotingCombiner(model, trainer.exit_heads)
        voter.calibrate(*calib_batch(adapt_corpus))
        ids = np.random.default_rng(0).integers(0, 32, (2, 8))
        out = voter.combined_logits(ids)
        probs = np.exp(out.data)
        assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-3)

    def test_confidence_strategy_no_calibration_needed(self, tuned):
        model, trainer = tuned
        voter = VotingCombiner(model, trainer.exit_heads, strategy="confidence")
        ids = np.random.default_rng(0).integers(0, 32, (1, 8))
        out = voter.combined_logits(ids)
        assert np.allclose(np.exp(out.data).sum(axis=-1), 1.0, atol=1e-3)

    def test_best_equals_that_exits_probs(self, tuned, adapt_corpus):
        model, trainer = tuned
        voter = VotingCombiner(model, trainer.exit_heads, strategy="best")
        voter.calibrate(*calib_batch(adapt_corpus))
        best_exit = max(voter.weights, key=voter.weights.get)
        ids = np.random.default_rng(0).integers(0, 32, (1, 6))
        combined = np.exp(voter.combined_logits(ids).data)
        from repro.tensor import no_grad

        with no_grad():
            per_exit = trainer.exit_heads.all_logits(model, ids)
        ref = per_exit[best_exit].data
        ref_probs = np.exp(ref - ref.max(-1, keepdims=True))
        ref_probs /= ref_probs.sum(-1, keepdims=True)
        assert np.allclose(combined, ref_probs, atol=1e-4)

    def test_voting_beats_worst_exit(self, tuned, adapt_corpus):
        """Calibrated mixture should never be much worse than the best
        exit and strictly better than the worst one."""
        from repro.eval import perplexity

        model, trainer = tuned
        voter = VotingCombiner(model, trainer.exit_heads)
        voter.calibrate(*calib_batch(adapt_corpus))
        voted_ppl = perplexity(voter.combined_logits, adapt_corpus, num_batches=2)

        worst = max(voter.validation_losses.values())
        worst_ppl = float(np.exp(worst))
        assert voted_ppl < worst_ppl * 1.05

    def test_describe(self, tuned, adapt_corpus):
        model, trainer = tuned
        voter = VotingCombiner(model, trainer.exit_heads)
        assert "uncalibrated" in voter.describe()
        voter.calibrate(*calib_batch(adapt_corpus))
        assert "exit2" in voter.describe()
