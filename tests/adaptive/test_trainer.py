"""Tests for the adaptive layer tuning loop."""

import numpy as np
import pytest

from repro.adaptive import (
    AdaptiveLayerTrainer,
    AdaptiveTuningConfig,
    default_exit_points,
    vanilla_trainer,
)
from repro.data import lm_batches


def batches(corpus, n, rng_seed=0, batch=4, seq=24):
    return lm_batches(corpus, batch, seq, n, np.random.default_rng(rng_seed))


class TestDefaults:
    def test_default_exit_points_even(self):
        assert default_exit_points(6, 3) == [2, 4, 6]
        assert default_exit_points(8, 4) == [2, 4, 6, 8]

    def test_default_exit_points_clamped(self):
        assert default_exit_points(2, 5) == [1, 2]

    def test_invalid_exits(self):
        with pytest.raises(ValueError):
            default_exit_points(6, 0)


class TestTrainStep:
    def test_step_stats_geometry(self, pretrained_model, adapt_corpus):
        trainer = AdaptiveLayerTrainer(
            pretrained_model,
            AdaptiveTuningConfig(window=2, exit_points=[2, 4, 6]),
        )
        stats = trainer.train(batches(adapt_corpus, 3))
        assert [s.window.exit_point for s in stats] == [2, 4, 6]
        assert all(s.grad_blocks == 2 for s in stats)
        assert all(s.forward_blocks == s.window.exit_point for s in stats)

    def test_only_window_blocks_get_grads(self, pretrained_model, adapt_corpus):
        trainer = AdaptiveLayerTrainer(
            pretrained_model,
            AdaptiveTuningConfig(window=2, exit_points=[4], schedule="fixed_shallow"),
        )
        inputs, targets = next(batches(adapt_corpus, 1))
        # Peek at gradients before the optimizer clears them.
        window = trainer.schedule.select(0, np.random.default_rng(0))
        logits = trainer._logits_for_window(inputs, window)
        from repro.tensor import cross_entropy

        cross_entropy(logits, targets).backward()
        for i, block in enumerate(pretrained_model.blocks):
            has_grad = any(
                p.grad is not None for _, p in block.named_parameters()
            )
            if window.start <= i < window.stop:
                assert has_grad, f"block {i} should have grads"
            else:
                assert not has_grad, f"block {i} should be frozen this step"

    def test_frozen_blocks_do_not_move(self, pretrained_model, adapt_corpus):
        before = pretrained_model.blocks[0].attn.q_proj.weight.data.copy()
        trainer = AdaptiveLayerTrainer(
            pretrained_model,
            AdaptiveTuningConfig(window=1, exit_points=[6], schedule="fixed_shallow"),
        )
        trainer.train(batches(adapt_corpus, 3))
        after = pretrained_model.blocks[0].attn.q_proj.weight.data
        assert np.array_equal(before, after)

    def test_loss_decreases_on_adaptation(self, pretrained_model, adapt_corpus):
        trainer = AdaptiveLayerTrainer(
            pretrained_model,
            AdaptiveTuningConfig(window=2, exit_points=[2, 4, 6], lr=2e-3),
        )
        stats = trainer.train(batches(adapt_corpus, 30))
        first = np.mean([s.loss for s in stats[:6]])
        last = np.mean([s.loss for s in stats[-6:]])
        assert last < first

    def test_importance_schedule_integration(self, pretrained_model, adapt_corpus):
        trainer = AdaptiveLayerTrainer(
            pretrained_model,
            AdaptiveTuningConfig(window=2, exit_points=[2, 4, 6],
                                 schedule="importance"),
        )
        trainer.train(batches(adapt_corpus, 6))
        assert all(v is not None for v in trainer.schedule._losses.values())

    def test_max_steps_limit(self, pretrained_model, adapt_corpus):
        trainer = AdaptiveLayerTrainer(pretrained_model)
        stats = trainer.train(batches(adapt_corpus, 10), max_steps=4)
        assert len(stats) == 4

    def test_unknown_optimizer_raises(self, pretrained_model):
        with pytest.raises(ValueError):
            AdaptiveLayerTrainer(
                pretrained_model, AdaptiveTuningConfig(optimizer="bogus")
            )


class TestAccounting:
    def test_memory_report_window_smaller_than_vanilla(
        self, pretrained_model, adapt_corpus
    ):
        adaptive = AdaptiveLayerTrainer(
            pretrained_model, AdaptiveTuningConfig(window=2, exit_points=[2, 4, 6])
        )
        vanilla = vanilla_trainer(pretrained_model)
        mem_a = adaptive.memory_report(4, 24)
        mem_v = vanilla.memory_report(4, 24)
        assert mem_a.activation_bytes < mem_v.activation_bytes / 2
        assert mem_a.optimizer_bytes < mem_v.optimizer_bytes

    def test_average_cost_blocks(self, pretrained_model):
        trainer = AdaptiveLayerTrainer(
            pretrained_model, AdaptiveTuningConfig(window=2, exit_points=[2, 4, 6])
        )
        cost = trainer.average_cost_blocks()
        assert cost["forward_blocks"] == pytest.approx(4.0)
        assert cost["grad_blocks"] == pytest.approx(2.0)

    def test_vanilla_trainer_full_geometry(self, pretrained_model, adapt_corpus):
        trainer = vanilla_trainer(pretrained_model)
        stats = trainer.train(batches(adapt_corpus, 1))
        assert stats[0].forward_blocks == pretrained_model.num_layers
        assert stats[0].grad_blocks == pretrained_model.num_layers

    def test_tied_heads_not_double_counted_in_optimizer(self, pretrained_model):
        trainer = AdaptiveLayerTrainer(pretrained_model)
        param_ids = [id(p) for p in trainer.optimizer.params]
        assert len(param_ids) == len(set(param_ids))
