"""Tests for early-exit heads."""

import numpy as np
import pytest

from repro.adaptive import ExitHeadSet
from repro.tensor import no_grad


class TestExitHeadSet:
    def test_invalid_exit_points(self, pretrained_model):
        with pytest.raises(ValueError):
            ExitHeadSet(pretrained_model, [])
        with pytest.raises(ValueError):
            ExitHeadSet(pretrained_model, [0])
        with pytest.raises(ValueError):
            ExitHeadSet(pretrained_model, [pretrained_model.num_layers + 1])

    def test_tied_heads_add_only_norm_params(self, pretrained_model):
        heads = ExitHeadSet(pretrained_model, [2, 4], tie_embeddings=True)
        n = sum(p.size for p in heads.parameters())
        assert n == 2 * pretrained_model.config.dim  # two RMSNorm gains

    def test_untied_heads_have_projections(self, pretrained_model):
        heads = ExitHeadSet(pretrained_model, [2], tie_embeddings=False)
        n = sum(p.size for p in heads.parameters())
        cfg = pretrained_model.config
        assert n == cfg.dim + cfg.dim * cfg.vocab_size

    def test_head_for_unknown_depth_raises(self, pretrained_model):
        heads = ExitHeadSet(pretrained_model, [2, 4])
        with pytest.raises(KeyError):
            heads.head_for(3)

    def test_all_logits_shapes(self, pretrained_model):
        heads = ExitHeadSet(pretrained_model, [2, 4])
        ids = np.random.default_rng(0).integers(0, 32, (2, 8))
        with no_grad():
            per_exit = heads.all_logits(pretrained_model, ids)
        assert set(per_exit) == {2, 4, pretrained_model.num_layers}
        for logits in per_exit.values():
            assert logits.shape == (2, 8, 32)

    def test_final_exit_uses_model_head(self, pretrained_model):
        n = pretrained_model.num_layers
        heads = ExitHeadSet(pretrained_model, [2, n])
        ids = np.random.default_rng(0).integers(0, 32, (1, 6))
        with no_grad():
            per_exit = heads.all_logits(pretrained_model, ids)
            direct = pretrained_model(ids)
        assert np.allclose(per_exit[n].data, direct.data, atol=1e-5)

    def test_exit_points_deduplicated_and_sorted(self, pretrained_model):
        heads = ExitHeadSet(pretrained_model, [4, 2, 4])
        assert heads.exit_points == [2, 4]

    def test_exits_differ_from_final(self, pretrained_model):
        heads = ExitHeadSet(pretrained_model, [2])
        ids = np.random.default_rng(0).integers(0, 32, (1, 6))
        with no_grad():
            per_exit = heads.all_logits(pretrained_model, ids)
        assert not np.allclose(
            per_exit[2].data, per_exit[pretrained_model.num_layers].data, atol=1e-3
        )
