"""Tests for the train-step fast path: grad-free frozen prefix, eager
reclamation, window-scoped optimization, and the train/* telemetry."""

import numpy as np
import pytest

from repro.adaptive import AdaptiveLayerTrainer, AdaptiveTuningConfig
from repro.data import lm_batches
from repro.nn import TransformerLM
from repro.obs import MetricsRegistry, use_registry

from ..conftest import small_config


def untied_model(state=None, **overrides):
    cfg = small_config(num_layers=4, tie_embeddings=False, **overrides)
    model = TransformerLM(cfg)
    if state is not None:
        model.load_state_dict(state)
    return model


def window_config(**overrides):
    defaults = dict(
        window=2, exit_points=[4], schedule="round_robin", lr=1e-3,
        optimizer_scope="window",
    )
    defaults.update(overrides)
    return AdaptiveTuningConfig(**defaults)


def train_batches(corpus, n, seed=0):
    return list(lm_batches(corpus, 4, 16, n, np.random.default_rng(seed)))


class TestTrajectoryIdentity:
    def test_fast_path_is_bit_identical_to_full_tape(self, adapt_corpus):
        """The fast path is an optimization, not an approximation: with a
        window-scoped optimizer the loss sequence matches the full-tape
        baseline bit for bit."""
        state = untied_model().state_dict()
        batches = train_batches(adapt_corpus, 6)

        def losses(**overrides):
            trainer = AdaptiveLayerTrainer(
                untied_model(state), window_config(**overrides)
            )
            return [
                trainer.train_step(i, t).loss for i, t in batches
            ]

        fast = losses()  # fast_path, reclaim, flat all default-on
        full = losses(
            fast_path=False, eager_reclaim=False, flat_optimizer=False
        )
        assert fast == full

    def test_frozen_prefix_weights_identical_across_paths(self, adapt_corpus):
        state = untied_model().state_dict()
        batches = train_batches(adapt_corpus, 3)

        def prefix_weights(**overrides):
            model = untied_model(state)
            trainer = AdaptiveLayerTrainer(model, window_config(**overrides))
            for i, t in batches:
                trainer.train_step(i, t)
            return model.blocks[0].attn.q_proj.weight.data.copy()

        assert np.array_equal(
            prefix_weights(), prefix_weights(fast_path=False)
        )


class TestFreezing:
    def test_requires_grad_restored_after_step(
        self, pretrained_model, adapt_corpus
    ):
        trainer = AdaptiveLayerTrainer(
            pretrained_model,
            AdaptiveTuningConfig(window=2, exit_points=[4],
                                 schedule="fixed_shallow"),
        )
        inputs, targets = train_batches(adapt_corpus, 1)[0]
        trainer.train_step(inputs, targets)
        assert all(
            p.requires_grad for p in pretrained_model.parameters()
        )

    def test_restored_even_when_step_raises(self, pretrained_model):
        trainer = AdaptiveLayerTrainer(
            pretrained_model,
            AdaptiveTuningConfig(window=2, exit_points=[4],
                                 schedule="fixed_shallow"),
        )
        bad_inputs = np.zeros((2, 8), dtype=np.int64)
        bad_targets = np.zeros((3, 9), dtype=np.int64)  # shape mismatch
        with pytest.raises(Exception):
            trainer.train_step(bad_inputs, bad_targets)
        assert all(
            p.requires_grad for p in pretrained_model.parameters()
        )

    def test_frozen_params_counted_in_stats(
        self, pretrained_model, adapt_corpus
    ):
        trainer = AdaptiveLayerTrainer(
            pretrained_model,
            AdaptiveTuningConfig(window=2, exit_points=[4],
                                 schedule="fixed_shallow"),
        )
        inputs, targets = train_batches(adapt_corpus, 1)[0]
        stats = trainer.train_step(inputs, targets)
        out_of_window = sum(
            p.size
            for i, block in enumerate(pretrained_model.blocks)
            if not (2 <= i < 4)
            for _, p in block.named_parameters()
        )
        assert stats.frozen_params == out_of_window

    def test_no_freeze_flag(self, pretrained_model, adapt_corpus):
        trainer = AdaptiveLayerTrainer(
            pretrained_model,
            AdaptiveTuningConfig(window=2, exit_points=[4],
                                 schedule="fixed_shallow",
                                 freeze_out_of_window=False),
        )
        inputs, targets = train_batches(adapt_corpus, 1)[0]
        stats = trainer.train_step(inputs, targets)
        assert stats.frozen_params == 0


class TestReclaimAndPeak:
    def test_reclaim_lowers_peak(self, adapt_corpus):
        state = untied_model().state_dict()
        inputs, targets = train_batches(adapt_corpus, 1)[0]

        def peak(reclaim):
            trainer = AdaptiveLayerTrainer(
                untied_model(state), window_config(eager_reclaim=reclaim)
            )
            return trainer.train_step(inputs, targets).peak_tape_bytes

        assert peak(True) < peak(False)

    def test_fast_path_peak_below_full_tape(self, adapt_corpus):
        state = untied_model().state_dict()
        inputs, targets = train_batches(adapt_corpus, 1)[0]

        def peak(**overrides):
            trainer = AdaptiveLayerTrainer(
                untied_model(state), window_config(**overrides)
            )
            return trainer.train_step(inputs, targets).peak_tape_bytes

        assert peak() < peak(fast_path=False, eager_reclaim=False) / 1.5

    def test_reclaimed_bytes_reported(self, pretrained_model, adapt_corpus):
        trainer = AdaptiveLayerTrainer(
            pretrained_model,
            AdaptiveTuningConfig(window=2, exit_points=[4],
                                 schedule="fixed_shallow"),
        )
        inputs, targets = train_batches(adapt_corpus, 1)[0]
        stats = trainer.train_step(inputs, targets)
        assert stats.reclaimed_bytes > 0
        assert stats.peak_tape_bytes > 0

    def test_no_reclaim_reports_zero(self, pretrained_model, adapt_corpus):
        trainer = AdaptiveLayerTrainer(
            pretrained_model,
            AdaptiveTuningConfig(window=2, exit_points=[4],
                                 schedule="fixed_shallow",
                                 eager_reclaim=False),
        )
        inputs, targets = train_batches(adapt_corpus, 1)[0]
        assert trainer.train_step(inputs, targets).reclaimed_bytes == 0


class TestOptimizerScope:
    def test_window_scope_excludes_untied_embedding(self):
        model = untied_model()
        trainer = AdaptiveLayerTrainer(model, window_config())
        scoped = {id(p) for p in trainer.optimizer.params}
        assert id(model.embed.weight) not in scoped
        assert id(model.lm_head.weight) in scoped

    def test_window_scope_covers_all_scheduled_windows(
        self, pretrained_model
    ):
        trainer = AdaptiveLayerTrainer(
            pretrained_model,
            AdaptiveTuningConfig(window=2, exit_points=[2, 4, 6],
                                 optimizer_scope="window"),
        )
        scoped = {id(p) for p in trainer.optimizer.params}
        # Every block some window can train is in scope (windows 0..2,
        # 2..4, 4..6 cover all six blocks here).
        for block in pretrained_model.blocks:
            for _, p in block.named_parameters():
                assert id(p) in scoped

    def test_invalid_scope_raises(self, pretrained_model):
        with pytest.raises(ValueError):
            AdaptiveLayerTrainer(
                pretrained_model,
                AdaptiveTuningConfig(optimizer_scope="bogus"),
            )


class TestTelemetry:
    def test_train_metrics_published(self, pretrained_model, adapt_corpus):
        trainer = AdaptiveLayerTrainer(
            pretrained_model,
            AdaptiveTuningConfig(window=2, exit_points=[4],
                                 schedule="fixed_shallow"),
        )
        inputs, targets = train_batches(adapt_corpus, 1)[0]
        reg = MetricsRegistry()
        with use_registry(reg):
            stats = trainer.train_step(inputs, targets)
        assert reg.counter("train/steps").value == 1
        assert reg.counter("train/reclaimed_bytes").value == (
            stats.reclaimed_bytes
        )
        assert reg.gauge("train/peak_tape_bytes").value == (
            stats.peak_tape_bytes
        )
        assert reg.gauge("train/frozen_params").value == stats.frozen_params
        rows = reg.tables()["adapt/iter"]
        assert rows[0]["peak_tape_bytes"] == stats.peak_tape_bytes
        assert rows[0]["reclaimed_bytes"] == stats.reclaimed_bytes


class TestFusedKernelPin:
    def test_config_pin_overrides_global(self, pretrained_model, adapt_corpus):
        from repro.tensor import fused_kernels

        trainer = AdaptiveLayerTrainer(
            pretrained_model,
            AdaptiveTuningConfig(window=2, exit_points=[4],
                                 schedule="fixed_shallow",
                                 fused_kernels=False),
        )
        inputs, targets = train_batches(adapt_corpus, 1)[0]
        with fused_kernels(True):
            stats = trainer.train_step(inputs, targets)
        assert stats.loss > 0  # ran composed path without error
