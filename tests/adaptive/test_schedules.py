"""Tests for layer-subset tuning schedules."""

import numpy as np
import pytest

from repro.adaptive import (
    FixedShallowSchedule,
    FullDepthSchedule,
    ImportanceSchedule,
    RandomExitSchedule,
    RoundRobinSchedule,
    make_schedule,
)

EXITS = [2, 4, 6]
RNG = np.random.default_rng(0)


class TestWindows:
    def test_window_geometry(self):
        sched = RoundRobinSchedule(EXITS, window=2)
        w = sched.select(0, RNG)
        assert w.exit_point == 2
        assert w.stop == 2
        assert w.start == 0
        assert w.depth == 2

    def test_window_clamped_at_bottom(self):
        sched = RoundRobinSchedule([1], window=4)
        w = sched.select(0, RNG)
        assert w.start == 0 and w.depth == 1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            RoundRobinSchedule([], window=2)
        with pytest.raises(ValueError):
            RoundRobinSchedule(EXITS, window=0)


class TestRoundRobin:
    def test_cycles_through_exits(self):
        sched = RoundRobinSchedule(EXITS, window=2)
        picks = [sched.select(i, RNG).exit_point for i in range(6)]
        assert picks == [2, 4, 6, 2, 4, 6]


class TestRandomExit:
    def test_covers_all_exits(self):
        sched = RandomExitSchedule(EXITS, window=2)
        rng = np.random.default_rng(1)
        picks = {sched.select(i, rng).exit_point for i in range(60)}
        assert picks == set(EXITS)

    def test_reproducible_with_seeded_rng(self):
        sched = RandomExitSchedule(EXITS, window=2)
        a = [sched.select(i, np.random.default_rng(5)).exit_point for i in range(5)]
        b = [sched.select(i, np.random.default_rng(5)).exit_point for i in range(5)]
        assert a == b


class TestImportance:
    def test_unvisited_exits_prioritized(self):
        sched = ImportanceSchedule(EXITS, window=2)
        sched.update(2, 1.0)
        rng = np.random.default_rng(0)
        picks = {sched.select(i, rng).exit_point for i in range(30)}
        assert 2 not in picks  # only unvisited exits until all seen

    def test_high_loss_exit_sampled_more(self):
        sched = ImportanceSchedule(EXITS, window=2, temperature=0.1)
        sched.update(2, 5.0)
        sched.update(4, 1.0)
        sched.update(6, 1.0)
        rng = np.random.default_rng(0)
        picks = [sched.select(i, rng).exit_point for i in range(100)]
        assert picks.count(2) > 60

    def test_ema_smoothing(self):
        sched = ImportanceSchedule(EXITS, window=2, ema=0.5)
        sched.update(2, 4.0)
        sched.update(2, 0.0)
        assert sched._losses[2] == pytest.approx(2.0)

    def test_invalid_ema(self):
        with pytest.raises(ValueError):
            ImportanceSchedule(EXITS, window=2, ema=1.0)


class TestFixedAndFull:
    def test_fixed_shallow_constant(self):
        sched = FixedShallowSchedule(EXITS, window=2)
        picks = {sched.select(i, RNG).exit_point for i in range(5)}
        assert picks == {2}

    def test_full_depth_covers_everything(self):
        sched = FullDepthSchedule(num_layers=6)
        w = sched.select(0, RNG)
        assert w.start == 0 and w.stop == 6 and w.depth == 6


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("round_robin", RoundRobinSchedule),
            ("random", RandomExitSchedule),
            ("importance", ImportanceSchedule),
            ("fixed_shallow", FixedShallowSchedule),
        ],
    )
    def test_make_schedule(self, name, cls):
        assert isinstance(make_schedule(name, EXITS, 2), cls)

    def test_full_needs_num_layers(self):
        with pytest.raises(ValueError):
            make_schedule("full", EXITS, 2)
        assert isinstance(make_schedule("full", EXITS, 2, num_layers=6),
                          FullDepthSchedule)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_schedule("bogus", EXITS, 2)
