"""Tests for exit-head self-distillation."""

import numpy as np
import pytest

from repro.adaptive import ExitHeadSet, distill_exit_heads, distillation_loss
from repro.data import lm_batches
from repro.tensor import Tensor, nll_from_logits, no_grad


class TestDistillationLoss:
    def test_zero_when_student_equals_teacher(self):
        logits = np.random.default_rng(0).standard_normal((2, 3, 8)).astype(np.float32)
        student = Tensor(logits.copy(), requires_grad=True)
        loss = distillation_loss(student, logits, temperature=1.0)
        # KL term is teacher cross-entropy; at equality it equals the
        # teacher entropy, and its gradient must vanish.
        loss.backward()
        assert np.allclose(student.grad, 0.0, atol=1e-5)

    def test_positive_and_decreasing_with_alignment(self):
        rng = np.random.default_rng(0)
        teacher = rng.standard_normal((2, 4, 8)).astype(np.float32)
        far = Tensor(rng.standard_normal((2, 4, 8)), requires_grad=True)
        near = Tensor(teacher + 0.01 * rng.standard_normal((2, 4, 8)).astype(np.float32),
                      requires_grad=True)
        assert distillation_loss(near, teacher).item() < distillation_loss(
            far, teacher
        ).item()

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            distillation_loss(Tensor(np.zeros((1, 2))), np.zeros((1, 2)),
                              temperature=0.0)


class TestDistillExitHeads:
    def test_untied_heads_approach_teacher(self, pretrained_model, pretrain_corpus):
        heads = ExitHeadSet(pretrained_model, [2, 4], tie_embeddings=False, seed=0)
        rng = np.random.default_rng(0)
        ids, _ = next(lm_batches(pretrain_corpus, 4, 24, 1, rng))

        def exit_quality():
            with no_grad():
                per_exit = heads.all_logits(pretrained_model, ids)
                teacher = per_exit[pretrained_model.num_layers].data
                t_choice = teacher.argmax(-1)
                return float(
                    (per_exit[2].data.argmax(-1) == t_choice).mean()
                )

        before = exit_quality()
        losses = distill_exit_heads(
            pretrained_model,
            heads,
            lm_batches(pretrain_corpus, 4, 24, 30, np.random.default_rng(1)),
            lr=3e-3,
        )
        after = exit_quality()
        assert losses[-1] < losses[0]
        assert after >= before

    def test_backbone_untouched(self, pretrained_model, pretrain_corpus):
        heads = ExitHeadSet(pretrained_model, [2], tie_embeddings=False, seed=0)
        before = {n: p.data.copy() for n, p in pretrained_model.named_parameters()}
        distill_exit_heads(
            pretrained_model,
            heads,
            lm_batches(pretrain_corpus, 2, 16, 3, np.random.default_rng(0)),
        )
        for name, p in pretrained_model.named_parameters():
            assert np.array_equal(before[name], p.data), name

    def test_no_batches_raises(self, pretrained_model):
        heads = ExitHeadSet(pretrained_model, [2], tie_embeddings=False)
        with pytest.raises(ValueError):
            distill_exit_heads(pretrained_model, heads, [])

    def test_only_final_exit_raises(self, pretrained_model, pretrain_corpus):
        heads = ExitHeadSet(pretrained_model, [pretrained_model.num_layers],
                            tie_embeddings=False)
        batches = lm_batches(pretrain_corpus, 2, 8, 1, np.random.default_rng(0))
        with pytest.raises(ValueError):
            distill_exit_heads(pretrained_model, heads, batches)

    def test_distilled_exit_improves_ppl(self, pretrained_model, pretrain_corpus):
        from repro.eval import perplexity

        heads = ExitHeadSet(pretrained_model, [3], tie_embeddings=False, seed=0)

        def exit3(ids):
            with no_grad():
                return heads.all_logits(pretrained_model, ids)[3]

        before = perplexity(exit3, pretrain_corpus, num_batches=2)
        distill_exit_heads(
            pretrained_model,
            heads,
            lm_batches(pretrain_corpus, 4, 24, 40, np.random.default_rng(1)),
            lr=3e-3,
        )
        after = perplexity(exit3, pretrain_corpus, num_batches=2)
        assert after < before
