"""Span nesting, path construction, and aggregation."""

import pytest

from repro.obs import (
    MetricsRegistry,
    aggregate_spans,
    current_span,
    span,
    use_registry,
    walk_spans,
)


def test_spans_nest_into_a_tree():
    with use_registry() as reg:
        with span("outer"):
            with span("inner"):
                pass
            with span("inner"):
                pass
    (root,) = reg.spans
    assert root.name == "outer" and root.path == "outer"
    assert [c.path for c in root.children] == ["outer/inner", "outer/inner"]
    assert root.duration_s >= sum(c.duration_s for c in root.children)


def test_current_span_tracks_innermost():
    with use_registry():
        assert current_span() is None
        with span("a"):
            assert current_span().name == "a"
            with span("b"):
                assert current_span().path == "a/b"
            assert current_span().name == "a"
        assert current_span() is None


def test_span_feeds_registry_timer_by_path():
    with use_registry() as reg:
        for _ in range(3):
            with span("loop"):
                with span("body"):
                    pass
    assert reg.timer("loop").count == 3
    assert reg.timer("loop/body").count == 3
    assert len(reg.spans) == 3  # three roots, children attached


def test_span_meta_and_yielded_record():
    with use_registry() as reg:
        with span("search", strategy="greedy") as rec:
            rec.meta["evaluated"] = 42
    (root,) = reg.spans
    assert root.meta == {"strategy": "greedy", "evaluated": 42}


def test_span_records_even_on_exception():
    with use_registry() as reg:
        with pytest.raises(RuntimeError):
            with span("doomed"):
                raise RuntimeError("boom")
    assert len(reg.spans) == 1
    assert reg.timer("doomed").count == 1


def test_walk_and_aggregate_spans():
    with use_registry() as reg:
        for _ in range(2):
            with span("run"):
                with span("iter"):
                    pass
                with span("iter"):
                    pass
    paths = [s.path for s in walk_spans(reg.spans)]
    assert paths.count("run") == 2 and paths.count("run/iter") == 4
    summary = aggregate_spans(reg.spans)
    assert summary["run"]["count"] == 2
    assert summary["run/iter"]["count"] == 4
    assert summary["run/iter"]["mean_s"] == pytest.approx(
        summary["run/iter"]["total_s"] / 4
    )
    assert summary["run/iter"]["min_s"] <= summary["run/iter"]["max_s"]
