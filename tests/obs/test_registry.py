"""Counter/gauge/timer semantics and registry lifecycle."""

import numpy as np
import pytest

from repro.obs import (
    MetricsRegistry,
    get_registry,
    reset_registry,
    set_registry,
    use_registry,
)


def test_counter_increments_and_rejects_negative():
    reg = MetricsRegistry()
    c = reg.counter("adapt/iterations")
    assert c.value == 0
    assert c.inc() == 1
    assert c.inc(5) == 6
    with pytest.raises(ValueError):
        c.inc(-1)
    # get-or-create returns the same instance
    assert reg.counter("adapt/iterations") is c


def test_gauge_holds_last_value():
    g = MetricsRegistry().gauge("loss")
    assert g.value is None
    g.set(3.5)
    g.set(1.25)
    assert g.value == 1.25


def test_timer_aggregates_durations():
    t = MetricsRegistry().timer("step")
    for s in (0.1, 0.3, 0.2):
        t.record(s)
    assert t.count == 3
    assert t.total_s == pytest.approx(0.6)
    assert t.mean_s == pytest.approx(0.2)
    assert t.min_s == pytest.approx(0.1)
    assert t.max_s == pytest.approx(0.3)
    with pytest.raises(ValueError):
        t.record(-0.5)


def test_timer_time_contextmanager_measures():
    t = MetricsRegistry().timer("scoped")
    with t.time():
        sum(range(1000))
    assert t.count == 1
    assert t.total_s > 0


def test_empty_timer_as_dict_has_no_inf():
    d = MetricsRegistry().timer("never").as_dict()
    assert d["count"] == 0
    assert d["min_s"] == 0.0


def test_record_row_coerces_numpy_scalars():
    reg = MetricsRegistry()
    reg.record_row("t", loss=np.float64(1.5), step=np.int64(3), name="a")
    (row,) = reg.rows("t")
    assert row == {"loss": 1.5, "step": 3, "name": "a"}
    assert isinstance(row["loss"], float) and isinstance(row["step"], int)


def test_snapshot_and_reset():
    reg = MetricsRegistry()
    reg.counter("c").inc(2)
    reg.gauge("g").set(7)
    reg.timer("t").record(0.5)
    reg.record_row("rows", x=1)
    snap = reg.snapshot()
    assert snap["counters"] == {"c": 2}
    assert snap["gauges"] == {"g": 7.0}
    assert snap["timers"]["t"]["count"] == 1
    assert snap["tables"] == {"rows": [{"x": 1}]}
    reg.reset()
    assert reg.snapshot() == {
        "counters": {}, "gauges": {}, "timers": {}, "tables": {}
    }


def test_use_registry_swaps_and_restores():
    outer = reset_registry()
    try:
        with use_registry() as inner:
            assert get_registry() is inner
            get_registry().counter("only-inner").inc()
        assert get_registry() is outer
        assert outer.counter("only-inner").value == 0
        assert inner.counter("only-inner").value == 1
    finally:
        set_registry(outer)
