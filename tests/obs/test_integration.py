"""Telemetry integration: trainer rows, search counters, bench sidecars."""

import numpy as np
import pytest

from repro.adaptive import AdaptiveLayerTrainer, AdaptiveTuningConfig
from repro.data import lm_batches
from repro.obs import use_registry

from tests.conftest import small_config


@pytest.fixture
def telemetry(pretrained_model, adapt_corpus):
    """Train a few adaptive steps inside an isolated registry."""
    with use_registry() as reg:
        trainer = AdaptiveLayerTrainer(
            pretrained_model,
            AdaptiveTuningConfig(window=2, exit_points=[2, 4, 6], lr=1e-3),
        )
        stats = trainer.train(
            lm_batches(adapt_corpus, 4, 16, 5, np.random.default_rng(0))
        )
    return reg, stats


def test_trainer_emits_per_iteration_rows(telemetry):
    reg, stats = telemetry
    assert reg.counter("adapt/iterations").value == 5
    assert reg.gauge("adapt/last_loss").value == pytest.approx(stats[-1].loss)

    rows = reg.rows("adapt/iter")
    assert len(rows) == 5
    for i, (row, st) in enumerate(zip(rows, stats)):
        assert row["iteration"] == i
        assert row["loss"] == pytest.approx(st.loss)
        # wall time and tape-measured activation bytes are real measurements
        assert row["wall_time_s"] > 0
        assert row["activation_bytes"] > 0
        assert row["exit_point"] in (2, 4, 6)
        assert 1 <= row["grad_blocks"] <= 2
        assert row["trainable_params"] > 0


def test_trainer_spans_nest_and_aggregate(telemetry):
    reg, _ = telemetry
    timer = reg.timer("adapt/iter")
    assert timer.count == 5
    assert 0 < timer.min_s <= timer.mean_s <= timer.max_s
    assert len(reg.spans) == 5  # one root span per iteration


def test_luc_search_records_candidates(pretrained_model, pretrain_corpus):
    from repro.luc import enumerate_layer_options, measure_sensitivity, search_policy

    options = enumerate_layer_options((4, 8), (0.0, 0.3))
    inputs, targets = next(
        lm_batches(pretrain_corpus, 2, 16, 1, np.random.default_rng(1))
    )
    profile = measure_sensitivity(pretrained_model, inputs, targets, options)
    with use_registry() as reg:
        search_policy(
            profile, small_config().num_layers, budget=0.3, options=options
        )
    assert reg.counter("luc/search/candidates_evaluated").value > 0
    assert reg.counter("luc/search/runs").value == 1
    assert reg.rows("luc/search")
    assert reg.timer("luc/search").count == 1


def test_hw_schedule_search_records_counters():
    from repro.hw import EDGE_GPU_LIKE, schedule_workloads, tuning_iteration_workload

    gemms = tuning_iteration_workload(small_config(), 2, 16, 6, 4)
    with use_registry() as reg:
        schedule_workloads(gemms, EDGE_GPU_LIKE, strategy="heuristic")
    assert reg.counter("hw/search/gemms_scheduled").value == len(gemms)
    (row,) = reg.rows("hw/schedule_search")
    assert row["strategy"] == "heuristic"
    assert row["cycles"] > 0
    assert reg.timer("hw/schedule_search").count == 1


def test_bench_emit_writes_schema_valid_sidecar(tmp_path, monkeypatch):
    from benchmarks import common

    monkeypatch.setattr(common, "RESULTS_DIR", str(tmp_path))
    payload = common.emit(
        "toy",
        "toy bench",
        ["name", "value"],
        [["a", 1.0], ["b", float("nan")]],
        metrics={"best": np.float64(1.0)},
        config={"steps": 3},
    )
    common.validate_sidecar(payload)  # self-consistent
    assert payload["rows"][1]["value"] is None  # NaN → null, strict JSON
    assert payload["metrics"]["best"] == 1.0
    assert payload["config"]["steps"] == 3
    assert payload["config"]["vocab"] == common.VOCAB  # shared config merged
    assert (tmp_path / "toy.txt").exists()

    import json

    on_disk = json.loads((tmp_path / "toy.json").read_text())
    assert on_disk == payload


def test_validate_sidecar_rejects_malformed():
    from benchmarks.common import validate_sidecar

    good = {
        "bench": "x", "title": "t", "schema_version": 1,
        "headers": ["a"], "rows": [{"a": 1}], "metrics": {}, "config": {},
    }
    validate_sidecar(good)
    for key in good:
        bad = {k: v for k, v in good.items() if k != key}
        with pytest.raises(ValueError):
            validate_sidecar(bad)
    with pytest.raises(ValueError, match="headers"):
        validate_sidecar({**good, "rows": [{"b": 1}]})
    with pytest.raises(ValueError, match="schema_version"):
        validate_sidecar({**good, "schema_version": 2})
