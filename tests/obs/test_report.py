"""JSON report round-trip, JSONL tables, and pretty-printing."""

import json

import pytest

from repro.obs import (
    REPORT_SCHEMA_VERSION,
    build_report,
    format_report,
    load_report,
    report_spans,
    span,
    use_registry,
    write_report,
    write_table_jsonl,
)


def _populated_registry():
    from repro.obs import get_registry

    reg = get_registry()
    reg.counter("luc/search/candidates_evaluated").inc(12)
    reg.gauge("adapt/last_loss").set(2.5)
    with span("adapt"):
        with span("iter", index=0):
            pass
    reg.record_row("adapt/iter", iteration=0, loss=2.5)
    reg.record_row("adapt/iter", iteration=1, loss=2.0)
    return reg


def test_report_round_trip(tmp_path):
    path = str(tmp_path / "run.json")
    with use_registry() as reg:
        _populated_registry()
        written = write_report(path, reg, meta={"command": "adapt"})
    loaded = load_report(path)
    assert loaded == json.loads(json.dumps(written))  # identical after JSON
    assert loaded["schema_version"] == REPORT_SCHEMA_VERSION
    assert loaded["meta"] == {"command": "adapt"}
    assert loaded["counters"]["luc/search/candidates_evaluated"] == 12
    assert loaded["gauges"]["adapt/last_loss"] == 2.5
    assert loaded["tables"]["adapt/iter"][1]["loss"] == 2.0
    assert loaded["span_summary"]["adapt/iter"]["count"] == 1
    # span forest re-hydrates with structure intact
    (root,) = report_spans(loaded)
    assert root.path == "adapt"
    assert root.children[0].meta == {"index": 0}


def test_load_report_rejects_wrong_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema_version": 999}))
    with pytest.raises(ValueError, match="schema_version"):
        load_report(str(path))


def test_write_table_jsonl(tmp_path):
    path = tmp_path / "iters.jsonl"
    with use_registry() as reg:
        _populated_registry()
        n = write_table_jsonl(str(path), "adapt/iter", reg)
    assert n == 2
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines[0]["iteration"] == 0 and lines[1]["iteration"] == 1


def test_format_report_renders_sections():
    with use_registry() as reg:
        _populated_registry()
        text = format_report(build_report(reg, meta={"command": "adapt"}))
    assert "command: adapt" in text
    assert "luc/search/candidates_evaluated" in text
    assert "adapt/last_loss" in text
    assert "table 'adapt/iter' (2 rows)" in text
    assert format_report({}) == "(empty report)"


def test_format_report_truncates_long_tables():
    with use_registry() as reg:
        for i in range(25):
            reg.record_row("t", i=i)
        text = format_report(build_report(reg), max_rows=10)
    assert "(25 rows, last 10 shown)" in text
