"""Tests for the LUC policy search strategies."""

import numpy as np
import pytest

from repro.luc import (
    LayerCompression,
    LUCPolicy,
    SensitivityProfile,
    evolutionary_search,
    greedy_search,
    random_search,
    search_policy,
)

OPTIONS = [
    LayerCompression(8, 0.0),
    LayerCompression(4, 0.0),
    LayerCompression(4, 0.5),
    LayerCompression(2, 0.5),
]


def synthetic_profile(num_layers=6, sensitive_blocks=(0, 5)):
    """Hand-built profile: named blocks are 10x more compression-sensitive.

    Degradation grows as cost shrinks (monotone, realistic ordering).
    """
    scores = {}
    for b in range(num_layers):
        scale = 10.0 if b in sensitive_blocks else 1.0
        for opt in OPTIONS:
            scores[(b, opt)] = scale * (1.0 - opt.cost_factor())
    return SensitivityProfile(scores=scores, metric="synthetic")


class TestGreedy:
    def test_meets_budget(self):
        policy = greedy_search(synthetic_profile(), 6, budget=0.3, options=OPTIONS)
        assert policy.cost() <= 0.3 + 1e-9

    def test_spares_sensitive_blocks(self):
        """Sensitive blocks should end up with milder compression."""
        policy = greedy_search(
            synthetic_profile(sensitive_blocks=(2,)), 6, budget=0.25, options=OPTIONS
        )
        sensitive_cost = policy.layers[2].cost_factor()
        other_costs = [
            l.cost_factor() for i, l in enumerate(policy.layers) if i != 2
        ]
        assert sensitive_cost >= max(other_costs)

    def test_budget_one_keeps_everything(self):
        policy = greedy_search(synthetic_profile(), 6, budget=1.0, options=OPTIONS)
        assert policy.cost() <= 1.0
        assert policy.average_bits() == 8.0  # least-compressed option

    def test_budget_below_floor_raises(self):
        with pytest.raises(ValueError):
            greedy_search(synthetic_profile(), 6, budget=0.01, options=OPTIONS)

    def test_budget_above_one_raises(self):
        with pytest.raises(ValueError):
            greedy_search(synthetic_profile(), 6, budget=1.5, options=OPTIONS)


class TestEvolutionary:
    def test_meets_budget(self):
        policy = evolutionary_search(
            synthetic_profile(), 6, budget=0.3, options=OPTIONS, seed=0
        )
        assert policy.cost() <= 0.3 + 0.02  # soft penalty leaves tiny slack

    def test_deterministic_given_seed(self):
        a = evolutionary_search(synthetic_profile(), 6, 0.3, options=OPTIONS, seed=3)
        b = evolutionary_search(synthetic_profile(), 6, 0.3, options=OPTIONS, seed=3)
        assert a.layers == b.layers

    def test_not_much_worse_than_greedy(self):
        profile = synthetic_profile()
        greedy = greedy_search(profile, 6, 0.3, options=OPTIONS)
        evo = evolutionary_search(profile, 6, 0.3, options=OPTIONS, seed=0)
        assert profile.predicted_degradation(evo) <= (
            profile.predicted_degradation(greedy) * 1.5 + 1e-6
        )


class TestRandom:
    def test_feasible_or_fallback(self):
        policy = random_search(synthetic_profile(), 6, 0.3, options=OPTIONS, seed=0)
        assert policy.cost() <= 0.3 + 1e-9

    def test_tight_budget_fallback_to_cheapest(self):
        # Budget equal to the cheapest option: random sampling rarely hits
        # it, the fallback must kick in.
        floor = min(o.cost_factor() for o in OPTIONS)
        policy = random_search(
            synthetic_profile(), 6, floor, options=OPTIONS, n_samples=3, seed=0
        )
        assert policy.cost() <= floor + 1e-9


class TestDispatcher:
    def test_greedy_beats_random_on_structured_profile(self):
        profile = synthetic_profile(sensitive_blocks=(0, 1, 2))
        greedy = search_policy(profile, 6, 0.3, strategy="greedy", options=OPTIONS)
        rand = search_policy(
            profile, 6, 0.3, strategy="random", options=OPTIONS, n_samples=20, seed=1
        )
        assert profile.predicted_degradation(greedy) <= profile.predicted_degradation(
            rand
        ) + 1e-9

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError):
            search_policy(synthetic_profile(), 6, 0.3, strategy="bogus")
