"""Tests for per-layer sensitivity profiling."""

import numpy as np
import pytest

from repro.data import lm_batches
from repro.luc import (
    BLOCK_LINEAR_PATHS,
    CompressedLinear,
    LayerCompression,
    block_compressed,
    compress_block,
    measure_sensitivity,
    restore_block,
)
from repro.nn import Linear


@pytest.fixture
def calib(pretrain_corpus):
    rng = np.random.default_rng(42)
    return next(lm_batches(pretrain_corpus, 4, 24, 1, rng))


OPTIONS = [LayerCompression(2, 0.5), LayerCompression(8, 0.0)]


class TestBlockCompression:
    def test_compress_replaces_all_linears(self, pretrained_model):
        block = pretrained_model.blocks[0]
        undo = compress_block(block, LayerCompression(4, 0.3))
        assert len(undo) == len(BLOCK_LINEAR_PATHS)
        assert isinstance(block.attn.q_proj, CompressedLinear)
        restore_block(undo)
        assert isinstance(block.attn.q_proj, Linear)

    def test_context_manager_restores_on_error(self, pretrained_model):
        block = pretrained_model.blocks[0]
        with pytest.raises(RuntimeError):
            with block_compressed(block, LayerCompression(4, 0.3)):
                assert isinstance(block.mlp.gate_proj, CompressedLinear)
                raise RuntimeError("boom")
        assert isinstance(block.mlp.gate_proj, Linear)

    def test_forward_changes_under_compression(self, pretrained_model, calib):
        inputs, _ = calib
        from repro.tensor import no_grad

        with no_grad():
            base = pretrained_model(inputs).data.copy()
            with block_compressed(
                pretrained_model.blocks[0], LayerCompression(2, 0.5)
            ):
                compressed = pretrained_model(inputs).data
            restored = pretrained_model(inputs).data
        assert not np.allclose(base, compressed, atol=1e-4)
        assert np.allclose(base, restored, atol=1e-6)


class TestMeasureSensitivity:
    def test_profile_covers_all_pairs(self, pretrained_model, calib):
        inputs, targets = calib
        profile = measure_sensitivity(pretrained_model, inputs, targets, OPTIONS)
        assert len(profile.scores) == pretrained_model.num_layers * len(OPTIONS)

    def test_scores_nonnegative(self, pretrained_model, calib):
        inputs, targets = calib
        profile = measure_sensitivity(pretrained_model, inputs, targets, OPTIONS)
        assert all(v >= 0.0 for v in profile.scores.values())

    def test_harsher_compression_more_sensitive(self, pretrained_model, calib):
        """Averaged over blocks, 2-bit+50% must hurt more than 8-bit."""
        inputs, targets = calib
        profile = measure_sensitivity(pretrained_model, inputs, targets, OPTIONS)
        harsh = np.mean(
            [profile.score(i, OPTIONS[0]) for i in range(pretrained_model.num_layers)]
        )
        mild = np.mean(
            [profile.score(i, OPTIONS[1]) for i in range(pretrained_model.num_layers)]
        )
        assert harsh > mild

    def test_kl_metric(self, pretrained_model, calib):
        inputs, targets = calib
        profile = measure_sensitivity(
            pretrained_model, inputs, targets, OPTIONS, metric="kl"
        )
        assert profile.metric == "kl"
        assert all(v >= 0.0 for v in profile.scores.values())

    def test_weight_error_metric_no_forward(self, pretrained_model):
        profile = measure_sensitivity(
            pretrained_model, None, None, OPTIONS, metric="weight_error"
        )
        assert len(profile.scores) == pretrained_model.num_layers * len(OPTIONS)
        assert all(v >= 0.0 for v in profile.scores.values())

    def test_unknown_metric_raises(self, pretrained_model, calib):
        inputs, targets = calib
        with pytest.raises(ValueError):
            measure_sensitivity(pretrained_model, inputs, targets, OPTIONS, metric="x")

    def test_model_unchanged_after_profiling(self, pretrained_model, calib):
        inputs, targets = calib
        before = {
            name: p.data.copy() for name, p in pretrained_model.named_parameters()
        }
        measure_sensitivity(pretrained_model, inputs, targets, OPTIONS)
        for name, p in pretrained_model.named_parameters():
            assert np.array_equal(before[name], p.data), name
        assert isinstance(pretrained_model.blocks[0].attn.q_proj, Linear)

    def test_block_ranking_orders_by_score(self, pretrained_model, calib):
        inputs, targets = calib
        profile = measure_sensitivity(pretrained_model, inputs, targets, OPTIONS)
        ranking = profile.block_ranking(OPTIONS[0])
        scores = [profile.score(b, OPTIONS[0]) for b in ranking]
        assert scores == sorted(scores)

    def test_predicted_degradation_additive(self, pretrained_model, calib):
        from repro.luc import LUCPolicy

        inputs, targets = calib
        profile = measure_sensitivity(pretrained_model, inputs, targets, OPTIONS)
        policy = LUCPolicy([OPTIONS[0]] * pretrained_model.num_layers)
        expected = sum(
            profile.score(i, OPTIONS[0]) for i in range(pretrained_model.num_layers)
        )
        assert profile.predicted_degradation(policy) == pytest.approx(expected)

    def test_predicted_degradation_uncompressed_free(self, pretrained_model, calib):
        from repro.luc import LayerCompression, LUCPolicy

        inputs, targets = calib
        profile = measure_sensitivity(pretrained_model, inputs, targets, OPTIONS)
        policy = LUCPolicy(
            [LayerCompression(16, 0.0)] * pretrained_model.num_layers
        )
        assert profile.predicted_degradation(policy) == 0.0
