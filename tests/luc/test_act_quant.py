"""Tests for activation quantization in the LUC compression path."""

import numpy as np
import pytest

from repro.eval import model_perplexity
from repro.luc import CompressedLinear, LUCPolicy, apply_luc, remove_luc
from repro.nn import Linear
from repro.tensor import Tensor


class TestActivationQuant:
    def make(self, act_bits=8):
        return CompressedLinear(
            Linear(16, 8, rng=np.random.default_rng(0)),
            bits=8,
            prune_ratio=0.0,
            act_bits=act_bits,
        )

    def test_act16_is_noop(self):
        layer = self.make(act_bits=16)
        assert layer.act_spec is None

    def test_act_quant_changes_output(self):
        base = self.make(act_bits=None)
        quant = self.make(act_bits=2)
        x = Tensor(np.random.default_rng(1).standard_normal((4, 16)))
        assert not np.allclose(base(x).data, quant(x).data, atol=1e-4)

    def test_act8_close_to_fp(self):
        base = self.make(act_bits=None)
        quant = self.make(act_bits=8)
        x = Tensor(np.random.default_rng(1).standard_normal((4, 16)))
        assert np.allclose(base(x).data, quant(x).data, atol=0.15)

    def test_gradients_flow_through_act_quant(self):
        layer = self.make(act_bits=8)
        x = Tensor(np.random.default_rng(1).standard_normal((4, 16)),
                   requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None
        assert layer.inner.weight.grad is not None

    def test_repr_mentions_act_bits(self):
        assert "act=8b" in self.make(act_bits=8).extra_repr()

    def test_apply_luc_with_act_bits(self, pretrained_model, pretrain_corpus):
        policy = LUCPolicy.uniform(pretrained_model.num_layers, 8, 0.0)
        undo = apply_luc(pretrained_model, policy, act_bits=8)
        first = pretrained_model.blocks[0].attn.q_proj
        assert isinstance(first, CompressedLinear)
        assert first.act_bits == 8
        ppl = model_perplexity(pretrained_model, pretrain_corpus, num_batches=2)
        remove_luc(undo)
        base = model_perplexity(pretrained_model, pretrain_corpus, num_batches=2)
        # W8A8 should be close to lossless on this model.
        assert ppl < base * 1.2
