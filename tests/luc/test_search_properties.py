"""Property-based tests for the LUC policy search invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.luc import (
    LayerCompression,
    LUCPolicy,
    SensitivityProfile,
    evolutionary_search,
    greedy_search,
    random_search,
)

OPTIONS = [
    LayerCompression(8, 0.0),
    LayerCompression(8, 0.5),
    LayerCompression(4, 0.0),
    LayerCompression(4, 0.3),
    LayerCompression(4, 0.5),
    LayerCompression(2, 0.0),
    LayerCompression(2, 0.5),
]
MIN_COST = min(o.cost_factor() for o in OPTIONS)


def random_profile(num_layers: int, seed: int) -> SensitivityProfile:
    rng = np.random.default_rng(seed)
    scores = {}
    for b in range(num_layers):
        scale = float(rng.uniform(0.1, 10.0))
        for opt in OPTIONS:
            # Monotone-ish in compression severity with random noise.
            base = (1.0 - opt.cost_factor()) * scale
            scores[(b, opt)] = max(base + rng.normal(0, 0.05), 0.0)
    return SensitivityProfile(scores=scores, metric="synthetic")


@settings(max_examples=25, deadline=None)
@given(
    num_layers=st.integers(2, 12),
    budget=st.floats(MIN_COST + 0.01, 1.0),
    seed=st.integers(0, 1000),
)
def test_greedy_always_feasible(num_layers, budget, seed):
    profile = random_profile(num_layers, seed)
    policy = greedy_search(profile, num_layers, budget, options=OPTIONS)
    assert policy.cost() <= budget + 1e-9
    assert policy.num_layers == num_layers
    assert all(layer in OPTIONS for layer in policy.layers)


@settings(max_examples=15, deadline=None)
@given(
    num_layers=st.integers(2, 8),
    budget=st.floats(MIN_COST + 0.05, 0.8),
    seed=st.integers(0, 1000),
)
def test_random_search_feasible_and_within_options(num_layers, budget, seed):
    profile = random_profile(num_layers, seed)
    policy = random_search(
        profile, num_layers, budget, options=OPTIONS, n_samples=50, seed=seed
    )
    assert policy.cost() <= budget + 1e-9
    assert all(layer in OPTIONS for layer in policy.layers)


@settings(max_examples=10, deadline=None)
@given(
    num_layers=st.integers(2, 8),
    budget=st.floats(MIN_COST + 0.05, 0.8),
    seed=st.integers(0, 1000),
)
def test_greedy_competitive_with_random(num_layers, budget, seed):
    """Greedy is a marginal-efficiency heuristic, not an optimum: it may
    lose to sampling on adversarial profiles, but must stay competitive."""
    profile = random_profile(num_layers, seed)
    greedy = greedy_search(profile, num_layers, budget, options=OPTIONS)
    rand = random_search(
        profile, num_layers, budget, options=OPTIONS, n_samples=30, seed=seed
    )
    g = profile.predicted_degradation(greedy)
    r = profile.predicted_degradation(rand)
    assert g <= 2.0 * r + 1.0


@settings(max_examples=8, deadline=None)
@given(num_layers=st.integers(2, 6), seed=st.integers(0, 500))
def test_evolutionary_feasible(num_layers, seed):
    profile = random_profile(num_layers, seed)
    policy = evolutionary_search(
        profile, num_layers, 0.3, options=OPTIONS,
        population=16, generations=10, seed=seed,
    )
    assert policy.cost() <= 0.3 + 0.05  # soft-penalty slack


@settings(max_examples=20, deadline=None)
@given(
    num_layers=st.integers(1, 10),
    bits=st.sampled_from([2, 4, 8, 16]),
    ratio=st.floats(0.0, 0.9),
)
def test_policy_cost_formula(num_layers, bits, ratio):
    policy = LUCPolicy.uniform(num_layers, bits, ratio)
    assert policy.cost() == pytest.approx((bits / 16) * (1 - ratio), rel=1e-6)
    assert policy.average_bits() == bits
    assert policy.average_sparsity() == pytest.approx(ratio, rel=1e-6)
