"""Tests for iterative (progressive) LUC compression."""

import numpy as np
import pytest

from repro.data import lm_batches
from repro.eval import model_perplexity
from repro.luc import (
    CompressedLinear,
    budget_schedule,
    enumerate_layer_options,
    iterative_compress,
)

OPTIONS = enumerate_layer_options((2, 4, 8), (0.0, 0.5))


class TestBudgetSchedule:
    def test_endpoints(self):
        sched = budget_schedule(0.125, rounds=3, start=0.5)
        assert sched[0] == pytest.approx(0.5)
        assert sched[-1] == pytest.approx(0.125)
        assert len(sched) == 3

    def test_monotone_decreasing(self):
        sched = budget_schedule(0.1, rounds=5)
        assert all(a >= b for a, b in zip(sched, sched[1:]))

    def test_single_round(self):
        assert budget_schedule(0.2, rounds=1) == [0.2]

    def test_invalid(self):
        with pytest.raises(ValueError):
            budget_schedule(0.2, rounds=0)
        with pytest.raises(ValueError):
            budget_schedule(0.8, rounds=2, start=0.5)


class TestIterativeCompress:
    def run(self, model, corpus, rounds=2, target=0.25, recovery_steps=5):
        rng = np.random.default_rng(7)
        calib_in, calib_tg = next(lm_batches(corpus, 4, 24, 1, rng))

        def recovery():
            return lm_batches(corpus, 4, 24, recovery_steps,
                              np.random.default_rng(8))

        return iterative_compress(
            model, calib_in, calib_tg, recovery,
            target_budget=target, rounds=rounds,
            recovery_steps=recovery_steps, options=OPTIONS,
        )

    def test_history_structure(self, pretrained_model, pretrain_corpus):
        history = self.run(pretrained_model, pretrain_corpus, rounds=2)
        assert len(history) == 2
        assert history[-1].budget == pytest.approx(0.25)
        assert history[0].budget > history[-1].budget
        assert all(len(r.recovery_losses) == 5 for r in history)

    def test_model_left_compressed_at_final_policy(
        self, pretrained_model, pretrain_corpus
    ):
        history = self.run(pretrained_model, pretrain_corpus, rounds=2)
        assert isinstance(
            pretrained_model.blocks[0].attn.q_proj, CompressedLinear
        ) or any(
            layer.bits >= 16 and layer.prune_ratio == 0.0
            for layer in history[-1].policy.layers
        )
        assert history[-1].policy.cost() <= 0.25 + 1e-9

    def test_quality_stays_usable(self, pretrained_model, pretrain_corpus):
        base = model_perplexity(pretrained_model, pretrain_corpus, num_batches=2)
        self.run(pretrained_model, pretrain_corpus, rounds=2, target=0.2)
        compressed = model_perplexity(
            pretrained_model, pretrain_corpus, num_batches=2
        )
        assert compressed < base * 1.5

    def test_iterative_no_worse_than_oneshot_at_harsh_budget(
        self, pretrained_state, pretrain_corpus
    ):
        from repro.nn import TransformerLM
        from ..conftest import small_config

        def fresh():
            m = TransformerLM(small_config())
            m.load_state_dict(pretrained_state)
            return m

        one_model = fresh()
        one = self.run(one_model, pretrain_corpus, rounds=1, target=0.1,
                       recovery_steps=10)
        one_ppl = model_perplexity(one_model, pretrain_corpus, num_batches=2)

        iter_model = fresh()
        self.run(iter_model, pretrain_corpus, rounds=3, target=0.1,
                 recovery_steps=10)
        iter_ppl = model_perplexity(iter_model, pretrain_corpus, num_batches=2)
        # Progressive compression must not be (meaningfully) worse.
        assert iter_ppl <= one_ppl * 1.15
