"""Tests for hardware-aware LUC policy search."""

import numpy as np
import pytest

from repro.hw import AcceleratorSpec
from repro.luc import (
    LayerCompression,
    SensitivityProfile,
    block_cycle_costs,
    greedy_search,
    hardware_aware_search,
)
from repro.nn import TransformerConfig

CFG = TransformerConfig(vocab_size=64, dim=64, num_layers=6, num_heads=4,
                        max_len=128)
ACC = AcceleratorSpec()
OPTIONS = [
    LayerCompression(8, 0.0),
    LayerCompression(4, 0.0),
    LayerCompression(4, 0.5),
    LayerCompression(2, 0.5),
]


def profile(seed=0):
    rng = np.random.default_rng(seed)
    scores = {}
    for b in range(CFG.num_layers):
        scale = float(rng.uniform(0.5, 5.0))
        for opt in OPTIONS:
            scores[(b, opt)] = scale * (1.0 - opt.cost_factor())
    return SensitivityProfile(scores=scores, metric="synthetic")


class TestBlockCycleCosts:
    def test_covers_all_options(self):
        costs = block_cycle_costs(CFG, 4, 32, OPTIONS, ACC)
        assert set(costs) == set(OPTIONS)
        assert all(c > 0 for c in costs.values())

    def test_harsher_options_cheaper(self):
        costs = block_cycle_costs(CFG, 4, 32, OPTIONS, ACC)
        assert costs[LayerCompression(2, 0.5)] < costs[LayerCompression(8, 0.0)]
        assert costs[LayerCompression(4, 0.5)] < costs[LayerCompression(4, 0.0)]

    def test_forward_only_cheaper(self):
        full = block_cycle_costs(CFG, 4, 32, OPTIONS[:1], ACC)
        fwd = block_cycle_costs(CFG, 4, 32, OPTIONS[:1], ACC,
                                include_backward=False)
        assert fwd[OPTIONS[0]] < full[OPTIONS[0]] / 2


class TestHardwareAwareSearch:
    def test_budget_met_in_cycles(self):
        policy = hardware_aware_search(
            profile(), CFG, 4, 32, cycle_budget_fraction=0.7,
            accel=ACC, options=OPTIONS,
        )
        costs = block_cycle_costs(CFG, 4, 32, OPTIONS, ACC)
        uncompressed = block_cycle_costs(
            CFG, 4, 32, [LayerCompression(16, 0.0)], ACC
        )[LayerCompression(16, 0.0)]
        mean_cycles = np.mean([costs[l] for l in policy.layers])
        assert mean_cycles <= 0.7 * uncompressed + 1e-6

    def test_invalid_budget_raises(self):
        with pytest.raises(ValueError):
            hardware_aware_search(profile(), CFG, 4, 32, 0.0, ACC,
                                  options=OPTIONS)
        with pytest.raises(ValueError):
            hardware_aware_search(profile(), CFG, 4, 32, 1.5, ACC,
                                  options=OPTIONS)

    def test_unreachable_budget_raises(self):
        with pytest.raises(ValueError):
            hardware_aware_search(profile(), CFG, 4, 32, 0.05, ACC,
                                  options=OPTIONS)

    def test_differs_from_abstract_cost_search_when_hw_disagrees(self):
        """On DRAM-starved hardware sparsity saves fewer real cycles than
        the abstract model claims, so the two searches can diverge; both
        must remain valid policies."""
        starved = AcceleratorSpec(dram_bytes_per_cycle=1.0,
                                  sparse_efficiency=0.2)
        prof = profile()
        hw_policy = hardware_aware_search(
            prof, CFG, 4, 32, 0.95, starved, options=OPTIONS
        )
        abstract = greedy_search(prof, CFG.num_layers, 0.5, options=OPTIONS)
        assert hw_policy.num_layers == abstract.num_layers
        assert all(l in OPTIONS for l in hw_policy.layers)

    def test_spares_sensitive_layers(self):
        rng_profile = profile(seed=3)
        # Make block 2 overwhelmingly sensitive.
        scores = dict(rng_profile.scores)
        for opt in OPTIONS:
            scores[(2, opt)] = 100.0 * (1.0 - opt.cost_factor())
        prof = SensitivityProfile(scores=scores, metric="synthetic")
        policy = hardware_aware_search(prof, CFG, 4, 32, 0.65, ACC,
                                       options=OPTIONS)
        costs = block_cycle_costs(CFG, 4, 32, OPTIONS, ACC)
        block2 = costs[policy.layers[2]]
        others = [costs[l] for i, l in enumerate(policy.layers) if i != 2]
        assert block2 >= max(others)
