"""Tests for applying/removing LUC policies and CompressedLinear."""

import numpy as np
import pytest

from repro.luc import (
    CompressedLinear,
    LayerCompression,
    LUCPolicy,
    apply_luc,
    model_compression_summary,
    remove_luc,
)
from repro.nn import Adam, Linear
from repro.tensor import Tensor, no_grad


class TestCompressedLinear:
    def make(self, bits=4, ratio=0.5, seed=0):
        return CompressedLinear(
            Linear(16, 8, rng=np.random.default_rng(seed)),
            bits=bits,
            prune_ratio=ratio,
        )

    def test_sparsity_reported(self):
        layer = self.make(ratio=0.5)
        assert layer.sparsity == pytest.approx(0.5, abs=0.02)

    def test_effective_weight_is_sparse_and_quantized(self):
        layer = self.make(bits=2, ratio=0.5)
        eff = layer.effective_weight().data
        assert (eff == 0).mean() >= 0.45
        assert len(np.unique(eff)) <= 4 * 8 + 1  # per-channel 2-bit grids

    def test_forward_shape(self):
        layer = self.make()
        out = layer(Tensor(np.ones((3, 16))))
        assert out.shape == (3, 8)

    def test_grads_flow_to_master_weights(self):
        layer = self.make()
        layer(Tensor(np.ones((3, 16)))).sum().backward()
        assert layer.inner.weight.grad is not None

    def test_pruned_positions_stay_zero_after_tuning(self):
        layer = self.make(bits=8, ratio=0.5)
        opt = Adam(layer.parameters(), lr=0.05)
        x = Tensor(np.random.default_rng(1).standard_normal((8, 16)))
        for _ in range(5):
            loss = (layer(x) ** 2).mean()
            opt.zero_grad()
            loss.backward()
            opt.step()
        eff = layer.effective_weight().data
        assert np.allclose(eff[layer.mask == 0], 0.0)

    def test_explicit_mask(self):
        mask = np.zeros((16, 8), dtype=np.float32)
        layer = CompressedLinear(Linear(16, 8), mask=mask)
        assert layer.sparsity == 1.0

    def test_mask_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            CompressedLinear(Linear(16, 8), mask=np.ones((2, 2)))

    def test_16bit_no_prune_is_lossless(self):
        lin = Linear(16, 8, rng=np.random.default_rng(0))
        layer = CompressedLinear(lin, bits=16, prune_ratio=0.0)
        x = Tensor(np.random.default_rng(1).standard_normal((4, 16)))
        assert np.allclose(layer(x).data, lin(x).data, atol=1e-6)


class TestApplyLUC:
    def test_apply_and_remove_roundtrip(self, pretrained_model, pretrain_corpus):
        from repro.data import lm_batches

        rng = np.random.default_rng(0)
        inputs, _ = next(lm_batches(pretrain_corpus, 2, 16, 1, rng))
        with no_grad():
            base = pretrained_model(inputs).data.copy()
        policy = LUCPolicy.uniform(pretrained_model.num_layers, 4, 0.3)
        undo = apply_luc(pretrained_model, policy)
        with no_grad():
            compressed = pretrained_model(inputs).data
        assert not np.allclose(base, compressed, atol=1e-4)
        remove_luc(undo)
        with no_grad():
            restored = pretrained_model(inputs).data
        assert np.allclose(base, restored, atol=1e-6)

    def test_policy_layer_mismatch_raises(self, pretrained_model):
        with pytest.raises(ValueError):
            apply_luc(pretrained_model, LUCPolicy.uniform(3, 4, 0.0))

    def test_uncompressed_blocks_untouched(self, pretrained_model):
        layers = [LayerCompression(16, 0.0)] * pretrained_model.num_layers
        layers[2] = LayerCompression(4, 0.5)
        undo = apply_luc(pretrained_model, LUCPolicy(layers))
        assert isinstance(pretrained_model.blocks[0].attn.q_proj, Linear)
        assert isinstance(pretrained_model.blocks[2].attn.q_proj, CompressedLinear)
        remove_luc(undo)

    def test_summary_reflects_policy(self, pretrained_model):
        policy = LUCPolicy.uniform(pretrained_model.num_layers, 4, 0.3)
        undo = apply_luc(pretrained_model, policy)
        summary = model_compression_summary(pretrained_model)
        assert all(row["bits"] == 4 for row in summary)
        assert all(abs(row["sparsity"] - 0.3) < 0.05 for row in summary)
        remove_luc(undo)

    def test_summary_uncompressed(self, pretrained_model):
        summary = model_compression_summary(pretrained_model)
        assert all(row["bits"] == 16 and row["sparsity"] == 0.0 for row in summary)

    def test_mild_compression_small_ppl_hit(self, pretrained_model, pretrain_corpus):
        """8-bit, no pruning should barely move perplexity."""
        from repro.eval import model_perplexity

        base = model_perplexity(pretrained_model, pretrain_corpus, num_batches=2)
        undo = apply_luc(
            pretrained_model,
            LUCPolicy.uniform(pretrained_model.num_layers, 8, 0.0),
        )
        compressed = model_perplexity(pretrained_model, pretrain_corpus, num_batches=2)
        remove_luc(undo)
        assert compressed < base * 1.15
