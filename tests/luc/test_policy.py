"""Tests for LUC policy objects and the layer-option menu."""

import pytest

from repro.luc import (
    DEFAULT_BIT_OPTIONS,
    DEFAULT_PRUNE_OPTIONS,
    LayerCompression,
    LUCPolicy,
    enumerate_layer_options,
)


class TestLayerCompression:
    def test_cost_factor_uncompressed(self):
        assert LayerCompression(16, 0.0).cost_factor() == 1.0

    def test_cost_factor_combined(self):
        layer = LayerCompression(4, 0.5)
        assert layer.cost_factor() == pytest.approx(4 / 16 * 0.5)

    def test_hashable_for_profile_keys(self):
        assert LayerCompression(4, 0.5) == LayerCompression(4, 0.5)
        assert hash(LayerCompression(4, 0.5)) == hash(LayerCompression(4, 0.5))


class TestLUCPolicy:
    def test_uniform_constructor(self):
        policy = LUCPolicy.uniform(6, bits=4, prune_ratio=0.3)
        assert policy.num_layers == 6
        assert policy.average_bits() == 4.0
        assert policy.average_sparsity() == pytest.approx(0.3)

    def test_uncompressed_cost_is_one(self):
        assert LUCPolicy.uncompressed(8).cost() == 1.0

    def test_cost_is_mean_of_layers(self):
        policy = LUCPolicy(
            [LayerCompression(16, 0.0), LayerCompression(4, 0.5)]
        )
        assert policy.cost() == pytest.approx((1.0 + 0.125) / 2)

    def test_per_block_dicts(self):
        policy = LUCPolicy([LayerCompression(8, 0.0), LayerCompression(2, 0.5)])
        assert policy.bits_per_block() == {0: 8, 1: 2}
        assert policy.sparsity_per_block() == {0: 0.0, 1: 0.5}

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            LUCPolicy([LayerCompression(8, 1.0)])

    def test_describe_contains_blocks(self):
        text = LUCPolicy.uniform(3, 4, 0.3).describe()
        assert "block  0" in text and "4-bit" in text


class TestOptionMenu:
    def test_enumeration_size(self):
        options = enumerate_layer_options((2, 4), (0.0, 0.5))
        assert len(options) == 4

    def test_defaults(self):
        options = enumerate_layer_options()
        assert len(options) == len(DEFAULT_BIT_OPTIONS) * len(DEFAULT_PRUNE_OPTIONS)
        assert LayerCompression(4, 0.3) in options
