"""Tests for the greedy compression frontier."""

import numpy as np
import pytest

from repro.luc import (
    FrontierPoint,
    LayerCompression,
    SensitivityProfile,
    greedy_frontier,
    greedy_search,
    policy_at_budget,
)

OPTIONS = [
    LayerCompression(8, 0.0),
    LayerCompression(4, 0.0),
    LayerCompression(4, 0.5),
    LayerCompression(2, 0.5),
]


def profile(num_layers=4, seed=0):
    rng = np.random.default_rng(seed)
    scores = {}
    for b in range(num_layers):
        scale = float(rng.uniform(0.5, 5.0))
        for opt in OPTIONS:
            scores[(b, opt)] = scale * (1.0 - opt.cost_factor())
    return SensitivityProfile(scores=scores, metric="synthetic")


class TestGreedyFrontier:
    def test_costs_strictly_decreasing(self):
        points = greedy_frontier(profile(), 4, options=OPTIONS)
        costs = [p.cost for p in points]
        assert all(a > b for a, b in zip(costs, costs[1:]))

    def test_degradation_nondecreasing(self):
        points = greedy_frontier(profile(), 4, options=OPTIONS)
        degs = [p.predicted_degradation for p in points]
        assert all(a <= b + 1e-9 for a, b in zip(degs, degs[1:]))

    def test_endpoints(self):
        points = greedy_frontier(profile(), 4, options=OPTIONS)
        assert points[0].cost == pytest.approx(0.5)  # 8-bit dense everywhere
        floor = min(o.cost_factor() for o in OPTIONS)
        assert points[-1].cost == pytest.approx(floor)

    def test_min_cost_stops_early(self):
        points = greedy_frontier(profile(), 4, options=OPTIONS, min_cost=0.3)
        assert points[-1].cost <= 0.3 + 0.51 / 4  # one step below threshold
        assert points[-1].cost >= min(o.cost_factor() for o in OPTIONS)

    def test_matches_greedy_search_at_each_cost(self):
        prof = profile()
        points = greedy_frontier(prof, 4, options=OPTIONS)
        # greedy_search at a frontier cost must reproduce that point.
        mid = points[len(points) // 2]
        searched = greedy_search(prof, 4, mid.cost + 1e-9, options=OPTIONS)
        assert searched.layers == mid.policy.layers


class TestPolicyAtBudget:
    def test_selects_feasible_minimum_degradation(self):
        prof = profile()
        points = greedy_frontier(prof, 4, options=OPTIONS)
        policy = policy_at_budget(points, 0.3)
        assert policy.cost() <= 0.3 + 1e-9

    def test_infeasible_budget_raises(self):
        points = greedy_frontier(profile(), 4, options=OPTIONS)
        with pytest.raises(ValueError):
            policy_at_budget(points, 0.01)

    def test_budget_one_gives_least_compressed(self):
        points = greedy_frontier(profile(), 4, options=OPTIONS)
        policy = policy_at_budget(points, 1.0)
        # Degradation-minimal feasible point is the very first one.
        assert policy.layers == points[0].policy.layers
