"""LUC x structural slicing: options, sensitivity trials, search, cache."""

import numpy as np
import pytest

from repro.luc import (
    DEFAULT_SLICE_OPTIONS,
    LayerCompression,
    LUCPolicy,
    enumerate_layer_options,
    measure_sensitivity,
    search_policy,
)
from repro.luc.search import _decode_policy, _encode_policy
from repro.nn import is_sliced


def _batch(seed=0, batch=4, seq=16):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, 32, (batch, seq)),
        rng.integers(0, 32, (batch, seq)),
    )


class TestPolicy:
    def test_cost_factor_scales_with_slice_ratio(self):
        full = LayerCompression(8, 0.0)
        half = LayerCompression(8, 0.0, slice_ratio=0.5)
        assert full.slice_ratio == 1.0
        assert half.cost_factor() == pytest.approx(full.cost_factor() * 0.5)

    def test_policy_validates_slice_ratio(self):
        with pytest.raises(ValueError):
            LUCPolicy([LayerCompression(8, 0.0, slice_ratio=0.0)])
        with pytest.raises(ValueError):
            LUCPolicy([LayerCompression(8, 0.0, slice_ratio=1.5)])

    def test_slice_accessors(self):
        policy = LUCPolicy([
            LayerCompression(8, 0.0, slice_ratio=0.5),
            LayerCompression(4, 0.3),
        ])
        assert policy.has_slicing()
        assert policy.slice_ratios() == [0.5, 1.0]
        assert policy.slice_per_block() == {0: 0.5, 1: 1.0}
        assert "50% sliced width" in policy.describe()
        assert not LUCPolicy.uncompressed(2).has_slicing()

    def test_enumerate_includes_slice_options(self):
        assert DEFAULT_SLICE_OPTIONS == (1.0,)
        options = enumerate_layer_options((4, 8), (0.0,), (0.5, 1.0))
        assert len(options) == 4
        assert {o.slice_ratio for o in options} == {0.5, 1.0}
        # Default menu stays back-compatible: slicing off.
        assert all(o.slice_ratio == 1.0 for o in enumerate_layer_options())


class TestSensitivity:
    def test_slice_options_scored_and_restored(self, pretrained_model):
        inputs, targets = _batch()
        options = [
            LayerCompression(8, 0.0),
            LayerCompression(8, 0.0, slice_ratio=0.5),
        ]
        profile = measure_sensitivity(
            pretrained_model, inputs, targets, options
        )
        assert len(profile.scores) == 2 * pretrained_model.num_layers
        assert not is_sliced(pretrained_model)
        # Every (block, option) pair got a finite, non-negative score.
        # Per-block ordering between the two options is noise-dominated
        # at this scale, so we only require the scores to be well-formed.
        for i in range(pretrained_model.num_layers):
            for option in options:
                score = profile.score(i, option)
                assert np.isfinite(score) and score >= 0.0

    def test_weight_error_refuses_slice_options(self, pretrained_model):
        inputs, targets = _batch()
        options = [LayerCompression(8, 0.0, slice_ratio=0.5)]
        with pytest.raises(ValueError, match="weight_error"):
            measure_sensitivity(
                pretrained_model, inputs, targets, options,
                metric="weight_error",
            )


class TestSearch:
    def test_search_can_pick_slicing(self, pretrained_model):
        inputs, targets = _batch()
        options = enumerate_layer_options((8,), (0.0,), (0.5, 1.0))
        profile = measure_sensitivity(
            pretrained_model, inputs, targets, options
        )
        # A budget below 8/16 is reachable only through slicing.
        policy = search_policy(
            profile, pretrained_model.num_layers, 0.3, options=options
        )
        assert policy.has_slicing()
        assert policy.cost() <= 0.3

    def test_encode_decode_roundtrip_and_back_compat(self):
        policy = LUCPolicy([
            LayerCompression(4, 0.3, slice_ratio=0.5),
            LayerCompression(8, 0.0),
        ])
        assert _decode_policy(_encode_policy(policy)) == policy
        # Payloads written before slicing existed decode as unsliced.
        legacy = _decode_policy([[4, 0.3], [8, 0.0]])
        assert legacy.layers[0] == LayerCompression(4, 0.3, slice_ratio=1.0)
