"""Tests for model-level GPTQ compression and input capture."""

import numpy as np
import pytest

from repro.data import lm_batches
from repro.eval import model_perplexity
from repro.luc import (
    CompressedLinear,
    LUCPolicy,
    apply_luc,
    gptq_compress_model,
    remove_luc,
)
from repro.nn import capture_linear_inputs
from repro.tensor import no_grad


@pytest.fixture
def calib_ids(pretrain_corpus):
    rng = np.random.default_rng(11)
    ids, _ = next(lm_batches(pretrain_corpus, 4, 24, 1, rng))
    return ids


class TestCaptureLinearInputs:
    def test_captures_correct_shapes(self, pretrained_model, calib_ids):
        targets = [
            pretrained_model.blocks[0].attn.q_proj,
            pretrained_model.blocks[2].mlp.down_proj,
        ]
        captured = capture_linear_inputs(pretrained_model, targets, calib_ids)
        assert set(captured) == {id(t) for t in targets}
        q_in = captured[id(targets[0])]
        assert q_in.shape == (4 * 24, pretrained_model.config.dim)
        down_in = captured[id(targets[1])]
        assert down_in.shape[1] == pretrained_model.config.resolved_mlp_hidden()

    def test_model_restored(self, pretrained_model, calib_ids):
        from repro.nn import Linear

        target = pretrained_model.blocks[0].attn.q_proj
        capture_linear_inputs(pretrained_model, [target], calib_ids)
        assert pretrained_model.blocks[0].attn.q_proj is target
        assert isinstance(pretrained_model.blocks[0].attn.q_proj, Linear)

    def test_missing_target_raises(self, pretrained_model, calib_ids):
        from repro.nn import Linear

        orphan = Linear(4, 4)
        with pytest.raises(ValueError):
            capture_linear_inputs(pretrained_model, [orphan], calib_ids)

    def test_forward_unchanged_by_capture(self, pretrained_model, calib_ids):
        with no_grad():
            before = pretrained_model(calib_ids).data.copy()
        capture_linear_inputs(
            pretrained_model, [pretrained_model.blocks[1].attn.v_proj], calib_ids
        )
        with no_grad():
            after = pretrained_model(calib_ids).data
        assert np.allclose(before, after, atol=1e-6)


class TestGPTQCompressModel:
    def test_policy_mismatch_raises(self, pretrained_model, calib_ids):
        with pytest.raises(ValueError):
            gptq_compress_model(
                pretrained_model, LUCPolicy.uniform(2, 4, 0.0), calib_ids
            )

    def test_wrappers_installed_and_weights_on_grid(
        self, pretrained_model, calib_ids
    ):
        policy = LUCPolicy.uniform(pretrained_model.num_layers, 4, 0.0)
        gptq_compress_model(pretrained_model, policy, calib_ids)
        layer = pretrained_model.blocks[0].attn.q_proj
        assert isinstance(layer, CompressedLinear)
        # Per output channel, at most 15 distinct 4-bit values.
        w = layer.inner.weight.data
        for col in range(0, w.shape[1], 8):
            assert len(np.unique(w[:, col])) <= 15

    def test_sparsity_enforced(self, pretrained_model, calib_ids):
        policy = LUCPolicy.uniform(pretrained_model.num_layers, 8, 0.5)
        gptq_compress_model(pretrained_model, policy, calib_ids)
        layer = pretrained_model.blocks[3].mlp.gate_proj
        eff = layer.effective_weight().data
        assert (eff == 0).mean() >= 0.45

    def test_quality_at_2bit_beats_ste_rtn(self, pretrained_state,
                                           pretrain_corpus, calib_ids):
        """At 2 bits, GPTQ-compressed perplexity <= STE round-to-nearest."""
        from repro.nn import TransformerLM
        from ..conftest import small_config

        policy_bits = 2

        rtn_model = TransformerLM(small_config())
        rtn_model.load_state_dict(pretrained_state)
        policy = LUCPolicy.uniform(rtn_model.num_layers, policy_bits, 0.0)
        apply_luc(rtn_model, policy)
        ppl_rtn = model_perplexity(rtn_model, pretrain_corpus, num_batches=3)

        gptq_model = TransformerLM(small_config())
        gptq_model.load_state_dict(pretrained_state)
        gptq_compress_model(gptq_model, policy, calib_ids)
        ppl_gptq = model_perplexity(gptq_model, pretrain_corpus, num_batches=3)
        assert ppl_gptq <= ppl_rtn * 1.05

    def test_tunable_after_compression(self, pretrained_model, calib_ids,
                                       adapt_corpus):
        from repro.adaptive import AdaptiveLayerTrainer, AdaptiveTuningConfig

        policy = LUCPolicy.uniform(pretrained_model.num_layers, 4, 0.3)
        gptq_compress_model(pretrained_model, policy, calib_ids)
        trainer = AdaptiveLayerTrainer(
            pretrained_model,
            AdaptiveTuningConfig(window=2, exit_points=[2, 4, 6], lr=2e-3),
        )
        stats = trainer.train(
            lm_batches(adapt_corpus, 4, 24, 9, np.random.default_rng(0))
        )
        assert np.isfinite(stats[-1].loss)
