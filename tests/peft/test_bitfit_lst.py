"""Tests for BitFit and Ladder Side Tuning baselines."""

import numpy as np
import pytest

from repro.data import lm_batches
from repro.peft import (
    LadderSideNetwork,
    apply_bitfit,
    restore_full_training,
    tune,
)
from repro.tensor import no_grad


class TestBitFit:
    def test_only_1d_params_trainable(self, pretrained_model):
        trainable = apply_bitfit(pretrained_model)
        assert all(p.data.ndim <= 1 for p in trainable)
        matrices = [
            p for _, p in pretrained_model.named_parameters() if p.data.ndim > 1
        ]
        assert all(not p.requires_grad for p in matrices)
        restore_full_training(pretrained_model)

    def test_tiny_trainable_fraction(self, pretrained_model):
        trainable = apply_bitfit(pretrained_model)
        n_train = sum(p.size for p in trainable)
        assert n_train < pretrained_model.num_parameters() * 0.02
        restore_full_training(pretrained_model)

    def test_bitfit_reduces_loss(self, pretrained_model, adapt_corpus):
        trainable = apply_bitfit(pretrained_model)
        result = tune(
            lambda ids: pretrained_model(ids),
            trainable,
            lm_batches(adapt_corpus, 4, 24, 20, np.random.default_rng(0)),
            lr=1e-2,
        )
        assert result.final_loss < result.initial_loss
        restore_full_training(pretrained_model)

    def test_restore_full_training(self, pretrained_model):
        apply_bitfit(pretrained_model)
        restore_full_training(pretrained_model)
        assert all(p.requires_grad for p in pretrained_model.parameters())


class TestLST:
    def test_initial_logits_match_backbone(self, pretrained_model):
        lst = LadderSideNetwork(pretrained_model, reduction=4)
        ids = np.random.default_rng(0).integers(0, 32, (2, 8))
        with no_grad():
            base = pretrained_model(ids).data
        out = lst(ids)
        assert np.allclose(out.data, base, atol=1e-5)  # gate starts at 0

    def test_side_params_exclude_backbone(self, pretrained_model):
        lst = LadderSideNetwork(pretrained_model, reduction=4)
        side = lst.side_parameters()
        backbone_ids = {id(p) for p in pretrained_model.parameters()}
        assert all(id(p) not in backbone_ids for p in side)
        assert lst.num_side_parameters() == sum(p.size for p in side)

    def test_side_network_is_small(self, pretrained_model):
        lst = LadderSideNetwork(pretrained_model, reduction=4)
        assert lst.num_side_parameters() < pretrained_model.num_parameters() * 0.5

    def test_invalid_reduction(self, pretrained_model):
        with pytest.raises(ValueError):
            LadderSideNetwork(pretrained_model, reduction=0)

    def test_backbone_gets_no_grads(self, pretrained_model, adapt_corpus):
        from repro.tensor import cross_entropy

        lst = LadderSideNetwork(pretrained_model, reduction=4)
        inputs, targets = next(
            lm_batches(adapt_corpus, 2, 16, 1, np.random.default_rng(0))
        )
        loss = cross_entropy(lst(inputs), targets)
        loss.backward()
        assert all(p.grad is None for p in pretrained_model.parameters())
        assert any(p.grad is not None for p in lst.side_parameters())

    def test_lst_adapts(self, pretrained_model, adapt_corpus):
        lst = LadderSideNetwork(pretrained_model, reduction=4, seed=0)
        result = tune(
            lst,
            lst.side_parameters(),
            lm_batches(adapt_corpus, 4, 24, 25, np.random.default_rng(0)),
            lr=5e-3,
        )
        assert result.final_loss < result.initial_loss


class TestTuneHelper:
    def test_unknown_optimizer(self, pretrained_model, adapt_corpus):
        with pytest.raises(ValueError):
            tune(
                lambda ids: pretrained_model(ids),
                pretrained_model.parameters(),
                lm_batches(adapt_corpus, 2, 8, 1, np.random.default_rng(0)),
                optimizer="bogus",
            )

    def test_no_batches_raises(self, pretrained_model):
        with pytest.raises(ValueError):
            tune(lambda ids: pretrained_model(ids),
                 pretrained_model.parameters(), [])

    def test_max_steps(self, pretrained_model, adapt_corpus):
        result = tune(
            lambda ids: pretrained_model(ids),
            pretrained_model.parameters(),
            lm_batches(adapt_corpus, 2, 8, 10, np.random.default_rng(0)),
            max_steps=3,
        )
        assert len(result.losses) == 3
