"""Tests for the bottleneck-adapter baseline."""

import numpy as np
import pytest

from repro.data import lm_batches
from repro.nn import Linear
from repro.peft import BottleneckAdapter, apply_adapters, remove_adapters, tune
from repro.tensor import Tensor, no_grad


class TestBottleneckAdapter:
    def make(self, bottleneck=4):
        return BottleneckAdapter(
            Linear(8, 8, rng=np.random.default_rng(0)), bottleneck=bottleneck
        )

    def test_starts_as_identity_update(self):
        adapter = self.make()
        x = Tensor(np.random.default_rng(1).standard_normal((3, 8)))
        assert np.allclose(adapter(x).data, adapter.inner(x).data, atol=1e-6)

    def test_invalid_bottleneck(self):
        with pytest.raises(ValueError):
            self.make(bottleneck=0)

    def test_param_count(self):
        adapter = self.make(bottleneck=4)
        assert adapter.down.size + adapter.up.size == 8 * 4 * 2

    def test_nonzero_after_update(self):
        adapter = self.make()
        adapter.up.data[:] = 0.1
        x = Tensor(np.random.default_rng(1).standard_normal((3, 8)))
        assert not np.allclose(adapter(x).data, adapter.inner(x).data, atol=1e-4)


class TestApplyAdapters:
    def test_backbone_frozen_adapters_trainable(self, pretrained_model):
        undo, trainable = apply_adapters(pretrained_model, bottleneck=4)
        assert len(trainable) == pretrained_model.num_layers * 2 * 2
        assert all(p.requires_grad for p in trainable)
        backbone = [
            p for name, p in pretrained_model.named_parameters()
            if "down" != name.split(".")[-1] and "up" != name.split(".")[-1]
        ]
        remove_adapters(undo)
        pretrained_model.requires_grad_(True)

    def test_initial_forward_unchanged(self, pretrained_model):
        ids = np.random.default_rng(0).integers(0, 32, (1, 8))
        with no_grad():
            base = pretrained_model(ids).data.copy()
        undo, _ = apply_adapters(pretrained_model, bottleneck=4)
        with no_grad():
            adapted = pretrained_model(ids).data
        assert np.allclose(base, adapted, atol=1e-5)
        remove_adapters(undo)
        pretrained_model.requires_grad_(True)

    def test_adapters_learn(self, pretrained_model, adapt_corpus):
        undo, trainable = apply_adapters(pretrained_model, bottleneck=8)
        result = tune(
            lambda ids: pretrained_model(ids),
            trainable,
            lm_batches(adapt_corpus, 4, 24, 20, np.random.default_rng(0)),
            lr=5e-3,
        )
        assert result.final_loss < result.initial_loss
        remove_adapters(undo)
        pretrained_model.requires_grad_(True)

    def test_remove_restores(self, pretrained_model):
        ids = np.random.default_rng(0).integers(0, 32, (1, 8))
        with no_grad():
            base = pretrained_model(ids).data.copy()
        undo, trainable = apply_adapters(pretrained_model)
        trainable[1].data[:] = 1.0  # perturb an up-projection
        remove_adapters(undo)
        pretrained_model.requires_grad_(True)
        with no_grad():
            restored = pretrained_model(ids).data
        assert np.allclose(base, restored, atol=1e-6)
