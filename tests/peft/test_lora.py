"""Tests for the LoRA baseline."""

import numpy as np
import pytest

from repro.nn import Linear
from repro.peft import LoRALinear, apply_lora, remove_lora, tune
from repro.tensor import Tensor, no_grad


class TestLoRALinear:
    def make(self, rank=4, seed=0):
        return LoRALinear(Linear(16, 8, rng=np.random.default_rng(seed)), rank=rank)

    def test_initial_output_matches_base(self):
        lora = self.make()
        x = Tensor(np.random.default_rng(1).standard_normal((4, 16)))
        assert np.allclose(lora(x).data, lora.inner(x).data, atol=1e-6)

    def test_adapter_params_small(self):
        lora = self.make(rank=2)
        n = lora.lora_a.size + lora.lora_b.size
        assert n == 16 * 2 + 2 * 8
        assert n < lora.inner.weight.size

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            self.make(rank=0)

    def test_merged_weight_equivalence(self):
        lora = self.make()
        lora.lora_b.data[:] = np.random.default_rng(2).standard_normal(
            lora.lora_b.shape
        )
        x = np.random.default_rng(3).standard_normal((4, 16)).astype(np.float32)
        merged = x @ lora.merged_weight() + lora.inner.bias.data
        assert np.allclose(lora(Tensor(x)).data, merged, atol=1e-4)


class TestApplyLoRA:
    def test_freezes_backbone(self, pretrained_model):
        undo, trainable = apply_lora(pretrained_model, rank=2)
        backbone = [
            p
            for name, p in pretrained_model.named_parameters()
            if "lora" not in name
        ]
        assert all(not p.requires_grad for p in backbone)
        assert all(p.requires_grad for p in trainable)
        remove_lora(undo)

    def test_adapter_count(self, pretrained_model):
        undo, trainable = apply_lora(pretrained_model, rank=2)
        # q and v per block, A and B per adapter.
        assert len(trainable) == pretrained_model.num_layers * 2 * 2
        remove_lora(undo)

    def test_remove_restores_forward(self, pretrained_model):
        ids = np.random.default_rng(0).integers(0, 32, (1, 8))
        with no_grad():
            base = pretrained_model(ids).data.copy()
        undo, _ = apply_lora(pretrained_model, rank=2)
        remove_lora(undo)
        pretrained_model.requires_grad_(True)
        with no_grad():
            restored = pretrained_model(ids).data
        assert np.allclose(base, restored, atol=1e-6)

    def test_lora_adapts_to_new_language(
        self, pretrained_model, adapt_corpus, pretrain_corpus
    ):
        from repro.data import lm_batches
        from repro.eval import model_perplexity

        before = model_perplexity(pretrained_model, adapt_corpus, num_batches=2)
        undo, trainable = apply_lora(pretrained_model, rank=4)
        result = tune(
            lambda ids: pretrained_model(ids),
            trainable,
            lm_batches(adapt_corpus, 4, 24, 25, np.random.default_rng(0)),
            lr=5e-3,
        )
        after = model_perplexity(pretrained_model, adapt_corpus, num_batches=2)
        assert result.final_loss < result.initial_loss
        assert after < before
        remove_lora(undo)
        pretrained_model.requires_grad_(True)
