"""Regression tests for wrapper composition: idempotent re-application,
LUC + PEFT stacking, and exact-identity restoration."""

import numpy as np

from repro.luc import LUCPolicy, LayerCompression, apply_luc, remove_luc
from repro.luc.compressed_linear import CompressedLinear
from repro.nn.transforms import AdapterDelta, LoRADelta, TransformedLinear
from repro.peft import apply_adapters, apply_lora, remove_adapters, remove_lora
from repro.tensor import no_grad


def uniform_policy(model, bits=4, ratio=0.3):
    return LUCPolicy([LayerCompression(bits, ratio)] * model.num_layers)


def lora_delta_count(model):
    total = 0
    for _, mod in model.named_modules():
        if isinstance(mod, TransformedLinear):
            total += sum(1 for t in mod.transforms if isinstance(t, LoRADelta))
    return total


class TestIdempotentReapply:
    def test_apply_lora_twice_does_not_stack(self, pretrained_model):
        undo1, t1 = apply_lora(pretrained_model, rank=2)
        undo2, t2 = apply_lora(pretrained_model, rank=2)
        n_sites = pretrained_model.num_layers * 2
        assert lora_delta_count(pretrained_model) == n_sites
        assert len(t1) == len(t2) == n_sites * 2
        remove_lora(undo2)
        assert lora_delta_count(pretrained_model) == n_sites
        remove_lora(undo1)
        assert lora_delta_count(pretrained_model) == 0
        pretrained_model.requires_grad_(True)

    def test_apply_adapters_twice_does_not_stack(self, pretrained_model):
        undo1, _ = apply_adapters(pretrained_model, bottleneck=4)
        undo2, _ = apply_adapters(pretrained_model, bottleneck=4)
        deltas = 0
        for _, mod in pretrained_model.named_modules():
            if isinstance(mod, TransformedLinear):
                deltas += sum(
                    1 for t in mod.transforms if isinstance(t, AdapterDelta)
                )
        assert deltas == pretrained_model.num_layers * 2
        remove_adapters(undo2)
        remove_adapters(undo1)
        pretrained_model.requires_grad_(True)


class TestLucLoraOrdering:
    def test_luc_lora_remove_roundtrip(self, pretrained_model):
        ids = np.random.default_rng(0).integers(0, 32, (2, 8))
        with no_grad():
            base = pretrained_model(ids).data.copy()

        luc_undo = apply_luc(pretrained_model, uniform_policy(pretrained_model))
        with no_grad():
            compressed = pretrained_model(ids).data.copy()

        lora_undo, trainable = apply_lora(pretrained_model, rank=2)
        # LoRA lands inside the existing compressed wrappers — no nesting.
        q = pretrained_model.blocks[0].attn.q_proj
        assert isinstance(q, CompressedLinear)
        assert any(isinstance(t, LoRADelta) for t in q.transforms)

        # lora_b starts at zero, so compression numerics are untouched.
        with no_grad():
            assert np.array_equal(
                pretrained_model(ids).data, compressed
            )

        remove_lora(lora_undo)
        assert not any(isinstance(t, LoRADelta) for t in q.transforms)
        with no_grad():
            assert np.array_equal(pretrained_model(ids).data, compressed)

        remove_luc(luc_undo)
        with no_grad():
            assert np.array_equal(pretrained_model(ids).data, base)
        pretrained_model.requires_grad_(True)

    def test_lora_survives_luc_reapply(self, pretrained_model):
        """Pre-refactor bug: apply_luc over a LoRA-wrapped site silently
        dropped the LoRA contribution.  Now the delta must survive."""
        lora_undo, trainable = apply_lora(pretrained_model, rank=2)
        trainable[1].data = (  # make the delta non-zero so it is visible
            np.random.default_rng(1)
            .standard_normal(trainable[1].shape)
            .astype(np.float32)
        )
        luc_undo = apply_luc(pretrained_model, uniform_policy(pretrained_model))
        q = pretrained_model.blocks[0].attn.q_proj
        assert any(isinstance(t, LoRADelta) for t in q.transforms)
        assert q.sparsity > 0.0
        remove_luc(luc_undo)
        remove_lora(lora_undo)
        pretrained_model.requires_grad_(True)


class TestExactIdentityRestore:
    def test_remove_luc_restores_original_objects(self, pretrained_model):
        originals = [
            (i, path, mod)
            for i, block in enumerate(pretrained_model.blocks)
            for path, mod in block.named_modules()
            if hasattr(mod, "weight") and not isinstance(mod, TransformedLinear)
        ]
        undo = apply_luc(pretrained_model, uniform_policy(pretrained_model))
        remove_luc(undo)
        for i, path, mod in originals:
            block = pretrained_model.blocks[i]
            current = block
            for part in path.split("."):
                current = getattr(current, part)
            assert current is mod  # identity, not equality

    def test_remove_lora_restores_original_objects(self, pretrained_model):
        q_before = [b.attn.q_proj for b in pretrained_model.blocks]
        v_before = [b.attn.v_proj for b in pretrained_model.blocks]
        undo, _ = apply_lora(pretrained_model, rank=2)
        remove_lora(undo)
        for block, q, v in zip(pretrained_model.blocks, q_before, v_before):
            assert block.attn.q_proj is q
            assert block.attn.v_proj is v
        pretrained_model.requires_grad_(True)
