"""Seed derivation: golden values (cross-platform stability) and the
decorrelation/purity properties the parallel contract leans on."""

import numpy as np

from repro.parallel import derive_seed, task_seeds

# SeedSequence output is specified and platform-independent; these pins
# catch accidental changes to the derivation scheme itself.
GOLDEN = {
    (0, 0): 15793235383387715774,
    (0, 1): 5836529245451711556,
    (0, 2): 17195319236771816063,
    (1, 2, 3): 12997252459554536576,
}


class TestGolden:
    def test_known_values(self):
        for args, expected in GOLDEN.items():
            assert derive_seed(*args) == expected

    def test_task_seeds_match_derive_seed(self):
        assert task_seeds(0, 3) == [
            GOLDEN[(0, 0)], GOLDEN[(0, 1)], GOLDEN[(0, 2)],
        ]


class TestProperties:
    def test_pure_and_repeatable(self):
        assert derive_seed(42, 7) == derive_seed(42, 7)
        assert task_seeds(5, 8) == task_seeds(5, 8)

    def test_siblings_decorrelated(self):
        seeds = task_seeds(0, 64)
        assert len(set(seeds)) == 64
        # streams seeded from siblings diverge immediately
        a = np.random.default_rng(seeds[0]).random(16)
        b = np.random.default_rng(seeds[1]).random(16)
        assert not np.allclose(a, b)

    def test_base_seed_matters(self):
        assert derive_seed(0, 3) != derive_seed(1, 3)

    def test_index_order_matters(self):
        assert derive_seed(0, 1, 2) != derive_seed(0, 2, 1)

    def test_accepts_numpy_integers(self):
        assert derive_seed(np.int64(0), np.int64(1)) == derive_seed(0, 1)

    def test_fits_in_uint64(self):
        for s in task_seeds(123, 32):
            assert 0 <= s < 2 ** 64
