"""WorkerPool: ordering, chunking, metrics merging, seed derivation."""

import os

import numpy as np
import pytest

from repro.obs import get_registry, use_registry
from repro.parallel import (
    WorkerPool,
    available_cpus,
    derive_seed,
    resolve_workers,
    task_seeds,
)
from repro.parallel.pool import _metered


def square(x):
    return x * x


def counting_square(x):
    get_registry().counter("test/calls").inc()
    return x * x


def gauging_square(x):
    reg = get_registry()
    reg.counter("test/calls").inc()
    reg.gauge("test/gauge").set(x)
    reg.record_row("test/rows", item=x)
    return x * x


class TestResolveWorkers:
    def test_explicit(self):
        assert resolve_workers(3) == 3

    def test_zero_and_none_mean_all_cores(self):
        assert resolve_workers(0) >= 1
        assert resolve_workers(None) >= 1

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)

    def test_defaults_to_available_cpus(self):
        assert resolve_workers(None) == available_cpus()
        assert resolve_workers(0) == available_cpus()


class TestAvailableCpus:
    def test_positive(self):
        assert available_cpus() >= 1

    def test_respects_affinity_mask(self):
        """On platforms with sched_getaffinity, the usable count is the
        affinity mask size (cgroup/taskset aware), not the raw count."""
        if not hasattr(os, "sched_getaffinity"):
            pytest.skip("no sched_getaffinity on this platform")
        assert available_cpus() == len(os.sched_getaffinity(0))
        assert available_cpus() <= (os.cpu_count() or 1)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, 3) == derive_seed(7, 3)

    def test_varies_by_index_and_base(self):
        seeds = {derive_seed(0, i) for i in range(50)}
        assert len(seeds) == 50
        assert derive_seed(0, 1) != derive_seed(1, 1)

    def test_task_seeds_match_pointwise_derivation(self):
        assert task_seeds(5, 4) == [derive_seed(5, i) for i in range(4)]

    def test_streams_are_decorrelated(self):
        a = np.random.default_rng(derive_seed(0, 0)).random(100)
        b = np.random.default_rng(derive_seed(0, 1)).random(100)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.5


class TestMap:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_order_preserved(self, workers):
        with WorkerPool(workers) as pool:
            assert pool.map(square, range(23)) == [x * x for x in range(23)]

    def test_empty_items(self):
        with WorkerPool(4) as pool:
            assert pool.map(square, []) == []

    def test_serial_and_parallel_agree(self):
        items = list(range(17))
        with WorkerPool(1) as a, WorkerPool(4) as b:
            assert a.map(square, items) == b.map(square, items)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_collect_metrics_merges_counters(self, workers):
        with use_registry() as reg:
            with WorkerPool(workers) as pool:
                pool.map(counting_square, range(9), collect_metrics=True)
        assert reg.counter("test/calls").value == 9

    def test_map_telemetry(self):
        with use_registry() as reg:
            with WorkerPool(2) as pool:
                pool.map(square, range(5))
        assert reg.counter("parallel/pool/tasks").value == 5
        assert reg.counter("parallel/pool/maps").value == 1
        assert reg.gauge("parallel/pool/workers").value == 2
        assert reg.timer("parallel/pool/map").count == 1

    def test_chunk_size_override(self):
        with WorkerPool(2) as pool:
            assert pool.map(square, range(10), chunk_size=3) == [
                x * x for x in range(10)
            ]

    def test_fallback_on_bad_start_method(self):
        pool = WorkerPool(4, start_method="not-a-start-method")
        with use_registry() as reg:
            with pool:
                assert pool.map(square, range(6)) == [x * x for x in range(6)]
            assert reg.counter("parallel/pool/fallbacks").value == 1
            assert pool._serial_fallback


class TestMetered:
    def test_returns_result_and_counters(self):
        result, counters = _metered(counting_square, 3)
        assert result == 9
        assert counters["test/calls"] == 1

    def test_isolates_caller_registry(self):
        with use_registry() as reg:
            _metered(counting_square, 2)
            assert reg.counter("test/calls").value == 0

    def test_counts_dropped_gauges_and_rows(self):
        """Gauges/timers/rows recorded inside a task don't survive the
        merge; their count comes back as pool/dropped_metrics."""
        result, counters = _metered(gauging_square, 3)
        assert result == 9
        assert counters["test/calls"] == 1
        assert counters["parallel/pool/dropped_metrics"] == 2  # gauge + row
        assert "test/gauge" not in counters

    def test_counter_only_tasks_drop_nothing(self):
        _, counters = _metered(counting_square, 3)
        assert "parallel/pool/dropped_metrics" not in counters

    @pytest.mark.parametrize("workers", [1, 2])
    def test_dropped_metrics_surface_in_caller_registry(self, workers):
        with use_registry() as reg:
            with WorkerPool(workers) as pool:
                out = pool.map(gauging_square, range(4), collect_metrics=True)
        assert out == [x * x for x in range(4)]
        assert reg.counter("test/calls").value == 4
        assert reg.counter("parallel/pool/dropped_metrics").value == 8
