"""EvalCache + stable_key: content addressing, persistence, accounting."""

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.obs import use_registry
from repro.parallel import EvalCache, stable_key


@dataclasses.dataclass(frozen=True)
class Point:
    x: int
    y: float


class TestStableKey:
    def test_deterministic(self):
        assert stable_key(1, "a", 2.5) == stable_key(1, "a", 2.5)

    def test_distinguishes_values_and_types(self):
        assert stable_key(1) != stable_key(2)
        assert stable_key(1) != stable_key("1")
        assert stable_key(True) != stable_key("True")
        assert stable_key([1, 2]) != stable_key([2, 1])

    def test_float_last_ulp_distinguished(self):
        a = 0.3
        b = np.nextafter(0.3, 1.0)
        assert stable_key(a) != stable_key(b)

    def test_dict_order_irrelevant(self):
        assert stable_key({"a": 1, "b": 2}) == stable_key({"b": 2, "a": 1})

    def test_dataclass_fields_hashed(self):
        assert stable_key(Point(1, 2.0)) == stable_key(Point(1, 2.0))
        assert stable_key(Point(1, 2.0)) != stable_key(Point(1, 2.1))

    def test_ndarray_content_hashed(self):
        a = np.arange(6, dtype=np.float64)
        b = np.arange(6, dtype=np.float64)
        assert stable_key(a) == stable_key(b)
        b[3] += 1e-12
        assert stable_key(a) != stable_key(b)
        assert stable_key(a) != stable_key(a.astype(np.float32))

    def test_numpy_scalars_match_python(self):
        assert stable_key(np.int64(3)) == stable_key(3)
        assert stable_key(np.float64(0.5)) == stable_key(0.5)

    def test_unhashable_type_raises(self):
        with pytest.raises(TypeError):
            stable_key(object())


class TestMemoryCache:
    def test_get_or_compute_memoizes(self):
        cache = EvalCache()
        calls = []
        assert cache.get_or_compute(("k",), lambda: calls.append(1) or 41) == 41
        assert cache.get_or_compute(("k",), lambda: calls.append(1) or 99) == 41
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_counters_published(self):
        with use_registry() as reg:
            cache = EvalCache()
            cache.get_or_compute((1,), lambda: "v")
            cache.get_or_compute((1,), lambda: "v")
        assert reg.counter("parallel/cache/hits").value == 1
        assert reg.counter("parallel/cache/misses").value == 1

    def test_len(self):
        cache = EvalCache()
        cache.get_or_compute((1,), lambda: "a")
        cache.get_or_compute((2,), lambda: "b")
        assert len(cache) == 2


class TestBoundedMemory:
    def test_lru_eviction_order(self):
        cache = EvalCache(max_bytes=2 * len(json.dumps("value-0")))
        for i in range(3):
            cache.store(stable_key(i), f"value-{i}")
        # key 0 is the least recently used and must be gone
        hit0, _ = cache.lookup(stable_key(0))
        hit2, _ = cache.lookup(stable_key(2))
        assert not hit0 and hit2
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_lookup_refreshes_recency(self):
        size = len(json.dumps("value-0"))
        cache = EvalCache(max_bytes=2 * size)
        cache.store(stable_key(0), "value-0")
        cache.store(stable_key(1), "value-1")
        cache.lookup(stable_key(0))  # 0 becomes most recent
        cache.store(stable_key(2), "value-2")  # evicts 1, not 0
        assert cache.lookup(stable_key(0))[0]
        assert not cache.lookup(stable_key(1))[0]

    def test_newest_entry_survives_even_oversized(self):
        cache = EvalCache(max_bytes=1)
        cache.store(stable_key("big"), "x" * 100)
        assert cache.lookup(stable_key("big"))[0]
        assert len(cache) == 1

    def test_memory_bytes_tracks_contents(self):
        cache = EvalCache()
        assert cache.memory_bytes == 0
        cache.store(stable_key(1), "abc")
        assert cache.memory_bytes == len(json.dumps("abc"))
        cache.store(stable_key(1), "abcdef")  # overwrite, not double count
        assert cache.memory_bytes == len(json.dumps("abcdef"))

    def test_ndarray_sized_by_nbytes(self):
        cache = EvalCache()
        arr = np.zeros(10, dtype=np.float32)
        cache.store(stable_key("a"), arr)
        assert cache.memory_bytes == arr.nbytes

    def test_evictions_published(self):
        with use_registry() as reg:
            cache = EvalCache(max_bytes=len(json.dumps("value-0")))
            cache.store(stable_key(0), "value-0")
            cache.store(stable_key(1), "value-1")
        assert cache.evictions == 1
        assert reg.counter("parallel/cache/evictions").value == 1

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            EvalCache(max_bytes=-1)

    def test_unbounded_by_default(self):
        cache = EvalCache()
        for i in range(50):
            cache.store(stable_key(i), f"value-{i}")
        assert len(cache) == 50
        assert cache.evictions == 0


class TestDiskInspection:
    def test_disk_usage_counts_shards(self, tmp_path):
        cache = EvalCache(str(tmp_path))
        assert cache.disk_usage() == (0, 0)
        for i in range(5):
            cache.store(stable_key(i), i)
        files, total = cache.disk_usage()
        assert files == 5 and total > 0

    def test_disk_usage_without_dir(self):
        assert EvalCache().disk_usage() == (0, 0)

    def test_prune_disk_removes_oldest(self, tmp_path):
        cache = EvalCache(str(tmp_path))
        for i in range(6):
            cache.store(stable_key(i), i)
            # strictly increasing mtimes regardless of fs resolution
            os.utime(cache._shard_path(stable_key(i)), (i, i))
        _, total = cache.disk_usage()
        with use_registry() as reg:
            removed = cache.prune_disk(total // 2)
        assert removed > 0
        files, new_total = cache.disk_usage()
        assert new_total <= total // 2
        assert files == 6 - removed
        assert reg.counter("parallel/cache/evictions").value == removed
        # oldest went first: the newest shard must survive
        assert os.path.exists(cache._shard_path(stable_key(5)))

    def test_prune_to_zero_clears_everything(self, tmp_path):
        cache = EvalCache(str(tmp_path))
        for i in range(3):
            cache.store(stable_key(i), i)
        cache.prune_disk(0)
        assert cache.disk_usage() == (0, 0)

    def test_prune_without_dir_is_noop(self):
        assert EvalCache().prune_disk(0) == 0


class TestPersistentCache:
    def test_roundtrip_across_instances(self, tmp_path):
        a = EvalCache(str(tmp_path))
        a.get_or_compute(("point",), lambda: {"v": 7})
        b = EvalCache(str(tmp_path))
        assert b.get_or_compute(("point",), lambda: pytest.fail("not cached")) == {
            "v": 7
        }
        assert b.hits == 1

    def test_encode_decode_hooks(self, tmp_path):
        a = EvalCache(str(tmp_path))
        a.get_or_compute(
            ("pt",), lambda: Point(3, 1.5), encode=dataclasses.asdict
        )
        b = EvalCache(str(tmp_path))
        hit, value = b.lookup(stable_key("pt"), decode=lambda d: Point(**d))
        assert hit and value == Point(3, 1.5)

    def test_namespaces_isolated(self, tmp_path):
        a = EvalCache(str(tmp_path), namespace="one")
        b = EvalCache(str(tmp_path), namespace="two")
        a.get_or_compute(("k",), lambda: 1)
        assert b.get_or_compute(("k",), lambda: 2) == 2

    def test_corrupted_shard_is_a_miss(self, tmp_path):
        a = EvalCache(str(tmp_path))
        key = stable_key("x")
        a.store(key, 5)
        path = a._shard_path(key)
        with open(path, "w") as fh:
            fh.write("{not json")
        b = EvalCache(str(tmp_path))
        hit, _ = b.lookup(key)
        assert not hit

    def test_key_mismatch_in_shard_is_a_miss(self, tmp_path):
        """A shard whose recorded key disagrees (e.g. partial copy from
        another tree) must not be served."""
        a = EvalCache(str(tmp_path))
        key = stable_key("x")
        a.store(key, 5)
        with open(a._shard_path(key), "w") as fh:
            json.dump({"key": "something-else", "value": 5}, fh)
        b = EvalCache(str(tmp_path))
        hit, _ = b.lookup(key)
        assert not hit

    def test_no_tmp_litter(self, tmp_path):
        cache = EvalCache(str(tmp_path))
        for i in range(10):
            cache.get_or_compute((i,), lambda: i)
        leftovers = [
            name
            for _, _, files in os.walk(tmp_path)
            for name in files
            if name.endswith(".tmp")
        ]
        assert leftovers == []
