"""Serial/parallel equivalence: the contract that makes ``--workers`` safe.

Every search must produce *identical* results at ``workers=1`` and
``workers=4`` — same policies, same schedules, same modeled cycles —
across all three LUC strategies and all three HW strategies, for
arbitrary seeds/budgets/shapes (property-based) and with the persistent
cache in the loop (a warm run must reproduce the cold run exactly).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import (
    AcceleratorSpec,
    GEMMWorkload,
    schedule_workloads,
    tuning_iteration_workload,
)
from repro.luc import LayerCompression, SensitivityProfile
from repro.luc.search import search_policy
from repro.nn import TransformerConfig
from repro.parallel import EvalCache

ACC = AcceleratorSpec()

OPTIONS = [
    LayerCompression(8, 0.0),
    LayerCompression(8, 0.3),
    LayerCompression(4, 0.0),
    LayerCompression(4, 0.5),
    LayerCompression(2, 0.3),
    LayerCompression(2, 0.5),
]

LUC_STRATEGIES = ["greedy", "evolutionary", "random"]
HW_STRATEGIES = ["exhaustive", "random", "evolutionary"]

FLOOR = min(o.cost_factor() for o in OPTIONS)


def random_profile(seed: int, num_layers: int) -> SensitivityProfile:
    """A randomized but deterministic sensitivity profile."""
    rng = np.random.default_rng(seed)
    scores = {}
    for block in range(num_layers):
        scale = float(rng.uniform(0.5, 10.0))
        for opt in OPTIONS:
            noise = float(rng.uniform(0.0, 0.2))
            scores[(block, opt)] = scale * (1.0 - opt.cost_factor()) + noise
    return SensitivityProfile(scores=scores, metric="synthetic")


def luc_kwargs(strategy: str, seed: int) -> dict:
    if strategy == "evolutionary":
        return {"population": 12, "generations": 6, "seed": seed}
    if strategy == "random":
        return {"n_samples": 40, "seed": seed}
    return {}


def hw_kwargs(strategy: str, seed: int) -> dict:
    if strategy == "evolutionary":
        return {"population": 8, "generations": 4, "seed": seed}
    if strategy == "random":
        return {"n_samples": 25, "seed": seed}
    return {}


def schedules_of(cost):
    return [(s.workload.name, s.schedule) for s in cost.scheduled]


# ----------------------------------------------------------------------
# LUC policy search


class TestLUCEquivalence:
    @pytest.mark.parametrize("strategy", LUC_STRATEGIES)
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        num_layers=st.integers(2, 10),
        budget=st.floats(FLOOR + 0.01, 1.0, allow_nan=False),
    )
    def test_workers_dont_change_policy(self, strategy, seed, num_layers, budget):
        profile = random_profile(seed, num_layers)
        kwargs = luc_kwargs(strategy, seed)
        serial = search_policy(
            profile, num_layers, budget, strategy=strategy,
            options=OPTIONS, workers=1, **kwargs,
        )
        parallel = search_policy(
            profile, num_layers, budget, strategy=strategy,
            options=OPTIONS, workers=4, **kwargs,
        )
        assert serial.layers == parallel.layers

    @pytest.mark.parametrize("strategy", LUC_STRATEGIES)
    def test_warm_cache_reproduces_cold_run(self, strategy, tmp_path):
        profile = random_profile(11, 6)
        kwargs = luc_kwargs(strategy, 11)
        cold_cache = EvalCache(str(tmp_path))
        cold = search_policy(
            profile, 6, 0.35, strategy=strategy, options=OPTIONS,
            workers=4, cache=cold_cache, **kwargs,
        )
        warm_cache = EvalCache(str(tmp_path))
        warm = search_policy(
            profile, 6, 0.35, strategy=strategy, options=OPTIONS,
            workers=1, cache=warm_cache, **kwargs,
        )
        assert cold.layers == warm.layers
        assert warm_cache.hits == 1  # the whole search was memoized

    def test_different_profiles_do_not_share_cache_entries(self, tmp_path):
        cache = EvalCache(str(tmp_path))
        a = search_policy(
            random_profile(1, 6), 6, 0.35, options=OPTIONS, cache=cache
        )
        b = search_policy(
            random_profile(2, 6), 6, 0.35, options=OPTIONS, cache=cache
        )
        # Both searches ran (two misses); with colliding keys the second
        # would have been served the first's policy as a hit.
        assert cache.misses == 2
        assert not (cache.hits and a.layers == b.layers)


# ----------------------------------------------------------------------
# HW schedule search


class TestHWEquivalence:
    @pytest.mark.parametrize("strategy", HW_STRATEGIES)
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        m=st.sampled_from([32, 64, 256, 512]),
        k=st.sampled_from([32, 64, 128]),
        n=st.sampled_from([48, 64, 256]),
        bits=st.sampled_from([2, 4, 8, 16]),
        sparsity=st.floats(0.0, 0.9, allow_nan=False),
    )
    def test_workers_dont_change_schedules(
        self, strategy, seed, m, k, n, bits, sparsity
    ):
        gemms = [
            GEMMWorkload("a", m, k, n, bits=bits, sparsity=sparsity),
            GEMMWorkload("b", n, k, m, bits=bits),
            GEMMWorkload("a2", m, k, n, bits=bits, sparsity=sparsity),  # dup
        ]
        kwargs = hw_kwargs(strategy, seed)
        serial = schedule_workloads(gemms, ACC, strategy=strategy,
                                    workers=1, **kwargs)
        parallel = schedule_workloads(gemms, ACC, strategy=strategy,
                                      workers=4, **kwargs)
        assert schedules_of(serial) == schedules_of(parallel)
        assert serial.cycles == parallel.cycles
        assert serial.energy_pj == parallel.energy_pj

    @pytest.mark.parametrize("strategy", HW_STRATEGIES)
    def test_full_iteration_workload_equivalent(self, strategy):
        cfg = TransformerConfig(
            vocab_size=64, dim=64, num_layers=3, num_heads=4, max_len=64
        )
        gemms = tuning_iteration_workload(cfg, 2, 16, 3, 1)
        kwargs = hw_kwargs(strategy, 0)
        serial = schedule_workloads(gemms, ACC, strategy=strategy,
                                    workers=1, **kwargs)
        parallel = schedule_workloads(gemms, ACC, strategy=strategy,
                                      workers=4, **kwargs)
        assert schedules_of(serial) == schedules_of(parallel)
        assert serial.cycles == parallel.cycles

    @pytest.mark.parametrize("strategy", HW_STRATEGIES)
    def test_warm_cache_reproduces_cold_run(self, strategy, tmp_path):
        cfg = TransformerConfig(
            vocab_size=64, dim=64, num_layers=2, num_heads=4, max_len=64
        )
        gemms = tuning_iteration_workload(cfg, 2, 16, 2, 0)
        kwargs = hw_kwargs(strategy, 3)
        cold = schedule_workloads(
            gemms, ACC, strategy=strategy, workers=4,
            cache=EvalCache(str(tmp_path)), **kwargs,
        )
        warm_cache = EvalCache(str(tmp_path))
        warm = schedule_workloads(
            gemms, ACC, strategy=strategy, workers=1,
            cache=warm_cache, **kwargs,
        )
        assert schedules_of(cold) == schedules_of(warm)
        assert cold.cycles == warm.cycles
        assert warm_cache.hits > 0


# ----------------------------------------------------------------------
# sensitivity profiling (feeds the LUC search)


class TestSensitivityEquivalence:
    @pytest.mark.parametrize("metric", ["loss_delta", "kl", "weight_error"])
    def test_workers_dont_change_scores(self, metric):
        from repro.luc import measure_sensitivity
        from repro.nn import TransformerLM

        model = TransformerLM(
            TransformerConfig(
                vocab_size=32, dim=32, num_layers=3, num_heads=2, max_len=64
            )
        )
        rng = np.random.default_rng(0)
        inputs = rng.integers(0, 32, size=(2, 12))
        targets = rng.integers(0, 32, size=(2, 12))
        opts = OPTIONS[:3]
        serial = measure_sensitivity(
            model, inputs, targets, opts, metric=metric, workers=1
        )
        parallel = measure_sensitivity(
            model, inputs, targets, opts, metric=metric, workers=4
        )
        assert serial.scores.keys() == parallel.scores.keys()
        for key in serial.scores:
            assert serial.scores[key] == parallel.scores[key]  # bit-for-bit
