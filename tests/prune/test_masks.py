"""Tests for pruning masks and the PrunedLinear wrapper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Linear
from repro.prune import (
    PrunedLinear,
    global_magnitude_masks,
    sparsity,
    structured_mask,
    unstructured_mask,
)
from repro.tensor import Tensor


def weights(seed=0, shape=(32, 16)):
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


class TestUnstructured:
    def test_sparsity_matches_ratio(self):
        mask = unstructured_mask(weights(), 0.5)
        assert sparsity(mask) == pytest.approx(0.5, abs=0.01)

    def test_keeps_largest_magnitudes(self):
        w = np.array([[0.1, -5.0], [2.0, 0.01]], dtype=np.float32)
        mask = unstructured_mask(w, 0.5)
        assert mask[0, 1] == 1.0 and mask[1, 0] == 1.0
        assert mask[0, 0] == 0.0 and mask[1, 1] == 0.0

    def test_zero_ratio_dense(self):
        assert sparsity(unstructured_mask(weights(), 0.0)) == 0.0

    def test_full_ratio_empty(self):
        assert sparsity(unstructured_mask(weights(), 1.0)) == 1.0

    def test_invalid_ratio_raises(self):
        with pytest.raises(ValueError):
            unstructured_mask(weights(), 1.5)

    def test_ties_handled_exactly(self):
        w = np.ones((10, 10), dtype=np.float32)
        mask = unstructured_mask(w, 0.3)
        assert sparsity(mask) == pytest.approx(0.3, abs=0.01)

    @settings(max_examples=20, deadline=None)
    @given(ratio=st.floats(0.0, 1.0), seed=st.integers(0, 100))
    def test_property_sparsity_close_to_ratio(self, ratio, seed):
        mask = unstructured_mask(weights(seed=seed, shape=(20, 20)), ratio)
        assert abs(sparsity(mask) - ratio) <= 1.5 / 400 + 1e-6

    @settings(max_examples=20, deadline=None)
    @given(ratio=st.floats(0.0, 0.99), seed=st.integers(0, 100))
    def test_property_kept_entries_dominate_pruned(self, ratio, seed):
        w = weights(seed=seed, shape=(10, 10))
        mask = unstructured_mask(w, ratio)
        kept = np.abs(w[mask == 1.0])
        pruned = np.abs(w[mask == 0.0])
        if kept.size and pruned.size:
            assert kept.min() >= pruned.max() - 1e-6


class TestStructured:
    def test_whole_columns_removed(self):
        mask = structured_mask(weights(), 0.25, axis=1)
        col_sums = mask.sum(axis=0)
        assert set(np.unique(col_sums)) <= {0.0, 32.0}
        assert (col_sums == 0).sum() == 4

    def test_rows_axis0(self):
        mask = structured_mask(weights(), 0.5, axis=0)
        row_sums = mask.sum(axis=1)
        assert (row_sums == 0).sum() == 16

    def test_prunes_smallest_norm_channels(self):
        w = weights().copy()
        w[:, 3] *= 0.001
        mask = structured_mask(w, 1.0 / 16, axis=1)
        assert np.all(mask[:, 3] == 0.0)


class TestGlobal:
    def test_global_budget_respected(self):
        ws = {"a": weights(0), "b": weights(1) * 10}
        masks = global_magnitude_masks(ws, 0.5)
        total = sum(m.size for m in masks.values())
        zeros = sum(m.size - m.sum() for m in masks.values())
        assert zeros / total == pytest.approx(0.5, abs=0.02)

    def test_layers_compete(self):
        """A layer with tiny weights should be pruned much harder."""
        ws = {"small": weights(0) * 0.01, "big": weights(1)}
        masks = global_magnitude_masks(ws, 0.5)
        assert sparsity(masks["small"]) > 0.9
        assert sparsity(masks["big"]) < 0.1

    def test_extremes(self):
        ws = {"a": weights(0)}
        assert sparsity(global_magnitude_masks(ws, 0.0)["a"]) == 0.0
        assert sparsity(global_magnitude_masks(ws, 1.0)["a"]) == 1.0


class TestPrunedLinear:
    def test_forward_uses_mask(self):
        lin = Linear(4, 4, rng=np.random.default_rng(0))
        mask = np.zeros((4, 4), dtype=np.float32)
        player = PrunedLinear(lin, mask)
        out = player(Tensor(np.ones((2, 4))))
        assert np.allclose(out.data, player.inner.bias.data)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            PrunedLinear(Linear(4, 4), np.ones((2, 2)))

    def test_magnitude_constructor(self):
        player = PrunedLinear.magnitude(Linear(8, 8, rng=np.random.default_rng(0)), 0.5)
        assert player.sparsity == pytest.approx(0.5, abs=0.02)

    def test_structured_constructor(self):
        player = PrunedLinear.magnitude(
            Linear(8, 8, rng=np.random.default_rng(0)), 0.25, structured=True
        )
        col_sums = player.mask.sum(axis=0)
        assert (col_sums == 0).sum() == 2

    def test_pruned_weights_get_zero_grad(self):
        player = PrunedLinear.magnitude(Linear(6, 6, rng=np.random.default_rng(0)), 0.5)
        x = Tensor(np.random.default_rng(1).standard_normal((3, 6)))
        player(x).sum().backward()
        grads_at_pruned = player.inner.weight.grad[player.mask == 0.0]
        assert np.allclose(grads_at_pruned, 0.0)

    def test_mask_survives_state_dict_roundtrip(self):
        a = PrunedLinear.magnitude(Linear(6, 6, rng=np.random.default_rng(0)), 0.5)
        b = PrunedLinear(Linear(6, 6, rng=np.random.default_rng(1)),
                         np.ones((6, 6), dtype=np.float32))
        b.load_state_dict(a.state_dict())
        assert np.array_equal(a.mask, b.mask)
        assert b.sparsity == pytest.approx(0.5, abs=0.02)

    def test_tuning_preserves_sparsity(self):
        from repro.nn import Adam

        player = PrunedLinear.magnitude(Linear(8, 8, rng=np.random.default_rng(0)), 0.5)
        opt = Adam(player.parameters(), lr=0.01)
        x = Tensor(np.random.default_rng(1).standard_normal((16, 8)))
        for _ in range(10):
            loss = (player(x) ** 2).mean()
            opt.zero_grad()
            loss.backward()
            opt.step()
        eff = player.effective_weight().data
        assert sparsity((eff != 0).astype(np.float32)) >= 0.49
