"""Tests for N:M fine-grained structured sparsity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prune import check_nm_pattern, nm_mask, nm_sparsity, sparsity


def weights(seed=0, shape=(16, 8)):
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


class TestNMMask:
    def test_2_4_pattern_valid(self):
        mask = nm_mask(weights(), 2, 4, axis=0)
        assert check_nm_pattern(mask, 2, 4, axis=0)
        assert sparsity(mask) == pytest.approx(0.5)

    def test_1_4_pattern(self):
        mask = nm_mask(weights(), 1, 4, axis=0)
        assert check_nm_pattern(mask, 1, 4, axis=0)
        assert sparsity(mask) == pytest.approx(0.75)

    def test_keeps_largest_in_each_group(self):
        w = np.zeros((4, 1), dtype=np.float32)
        w[:, 0] = [0.1, 5.0, -3.0, 0.01]
        mask = nm_mask(w, 2, 4, axis=0)
        assert mask[1, 0] == 1.0 and mask[2, 0] == 1.0
        assert mask[0, 0] == 0.0 and mask[3, 0] == 0.0

    def test_axis1(self):
        mask = nm_mask(weights(shape=(8, 16)), 2, 4, axis=1)
        assert check_nm_pattern(mask, 2, 4, axis=1)

    def test_n_equals_m_dense(self):
        mask = nm_mask(weights(), 4, 4)
        assert sparsity(mask) == 0.0

    def test_indivisible_axis_raises(self):
        with pytest.raises(ValueError):
            nm_mask(weights(shape=(10, 8)), 2, 4, axis=0)

    def test_invalid_nm_raises(self):
        with pytest.raises(ValueError):
            nm_mask(weights(), 0, 4)
        with pytest.raises(ValueError):
            nm_mask(weights(), 5, 4)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 4), seed=st.integers(0, 100))
    def test_property_pattern_holds(self, n, seed):
        mask = nm_mask(weights(seed=seed), n, 4, axis=0)
        assert check_nm_pattern(mask, n, 4, axis=0)
        assert sparsity(mask) == pytest.approx(nm_sparsity(n, 4))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_property_kept_dominate_within_group(self, seed):
        w = weights(seed=seed, shape=(8, 4))
        mask = nm_mask(w, 2, 4, axis=0)
        for col in range(4):
            for g in range(2):
                group = w[g * 4:(g + 1) * 4, col]
                kept = np.abs(group[mask[g * 4:(g + 1) * 4, col] == 1.0])
                dropped = np.abs(group[mask[g * 4:(g + 1) * 4, col] == 0.0])
                assert kept.min() >= dropped.max() - 1e-6


class TestNMSparsityHelpers:
    def test_nm_sparsity_values(self):
        assert nm_sparsity(2, 4) == 0.5
        assert nm_sparsity(1, 2) == 0.5
        assert nm_sparsity(4, 4) == 0.0

    def test_check_rejects_wrong_pattern(self):
        mask = np.ones((8, 4), dtype=np.float32)
        assert not check_nm_pattern(mask, 2, 4, axis=0)

    def test_check_rejects_indivisible(self):
        assert not check_nm_pattern(np.ones((10, 4), dtype=np.float32), 2, 4)

    def test_usable_with_pruned_linear(self):
        from repro.nn import Linear
        from repro.prune import PrunedLinear
        from repro.tensor import Tensor

        lin = Linear(16, 8, rng=np.random.default_rng(0))
        player = PrunedLinear(lin, nm_mask(lin.weight.data, 2, 4, axis=0))
        assert player.sparsity == pytest.approx(0.5)
        out = player(Tensor(np.ones((2, 16))))
        assert out.shape == (2, 8)
