"""Tests for the tape profiler, including empirical validation of the
analytical activation-memory model's scaling claims."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, profile_tape


class TestProfilerBasics:
    def test_counts_recorded_nodes(self):
        a = Tensor(np.ones((4, 4)), requires_grad=True)
        with profile_tape() as stats:
            out = (a * 2 + 1).relu()
        assert stats.recorded_nodes == 3  # mul, add, relu
        assert stats.recorded_bytes == 3 * 4 * 4 * 4

    def test_no_grad_records_nothing(self):
        a = Tensor(np.ones((4, 4)), requires_grad=True)
        with profile_tape() as stats:
            with no_grad():
                (a * 2 + 1).relu()
        assert stats.recorded_nodes == 0
        assert stats.recorded_bytes == 0

    def test_constants_record_nothing(self):
        a = Tensor(np.ones((4, 4)))  # no grad
        with profile_tape() as stats:
            (a * 2 + 1).relu()
        assert stats.recorded_nodes == 0

    def test_restores_original_make(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with profile_tape():
            pass
        out = a * 2
        out.sum().backward()
        assert np.allclose(a.grad, 2.0)

    def test_reset(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with profile_tape() as stats:
            _ = a * 2
            stats.reset()
            _ = a * 3
        assert stats.recorded_nodes == 1


class TestEmpiricalMemoryValidation:
    """The R-F2 scaling claims, measured instead of modeled."""

    def _window_bytes(self, model, window, ids):
        from repro.adaptive import AdaptiveLayerTrainer, AdaptiveTuningConfig

        trainer = AdaptiveLayerTrainer(
            model,
            AdaptiveTuningConfig(window=window, exit_points=[4],
                                 schedule="fixed_shallow"),
        )
        tuning_window = trainer.schedule.select(0, np.random.default_rng(0))
        with profile_tape() as stats:
            trainer._logits_for_window(ids, tuning_window)
        return stats.recorded_bytes

    def test_activation_bytes_scale_with_window(self, pretrained_model):
        ids = np.random.default_rng(0).integers(0, 32, (4, 16))
        one = self._window_bytes(pretrained_model, 1, ids)
        two = self._window_bytes(pretrained_model, 2, ids)
        four = self._window_bytes(pretrained_model, 4, ids)
        # Exit-head work is constant, so ratios are slightly below 2.
        assert 1.5 < two / one < 2.2
        assert 1.5 < four / two < 2.2

    def test_checkpointing_measured_smaller(self, pretrained_model):
        ids = np.random.default_rng(0).integers(0, 32, (2, 16))
        h = pretrained_model.embed_tokens(ids)
        with profile_tape() as plain:
            pretrained_model.run_blocks(Tensor(h.data, requires_grad=True), 0, 4)
        with profile_tape() as ckpt:
            pretrained_model.run_blocks(
                Tensor(h.data, requires_grad=True), 0, 4, checkpoint_blocks=True
            )
        assert ckpt.recorded_bytes < plain.recorded_bytes / 10

    def test_analytical_model_within_factor_of_measurement(self, pretrained_model):
        """The analytic per-block activation estimate must agree with the
        measured tape bytes within a small constant factor."""
        from repro.eval import block_activation_floats

        batch, seq = 4, 16
        ids = np.random.default_rng(0).integers(0, 32, (batch, seq))
        h = pretrained_model.embed_tokens(ids)
        with profile_tape() as stats:
            pretrained_model.run_blocks(Tensor(h.data, requires_grad=True), 0, 1)
        measured = stats.recorded_bytes
        predicted = block_activation_floats(
            pretrained_model.config, batch, seq
        ) * 4
        assert predicted / 3 < measured < predicted * 3
