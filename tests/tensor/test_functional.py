"""Unit tests for fused composite ops (softmax, cross-entropy, activations)."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    cross_entropy,
    dropout,
    embedding,
    gelu,
    log_softmax,
    masked_fill,
    nll_from_logits,
    silu,
    softmax,
)


def randt(*shape, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal(shape), requires_grad=True)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        s = softmax(randt(4, 7))
        assert np.allclose(s.data.sum(axis=-1), 1.0, atol=1e-6)

    def test_stability_large_logits(self):
        x = Tensor(np.array([[1000.0, 1000.0, 999.0]]), requires_grad=True)
        s = softmax(x)
        assert np.all(np.isfinite(s.data))

    def test_grad_sums_to_zero_per_row(self):
        x = randt(3, 5)
        (softmax(x) * randt(3, 5, seed=9).data).sum().backward()
        assert np.allclose(x.grad.sum(axis=-1), 0.0, atol=1e-5)

    def test_matches_manual(self):
        x = randt(2, 4)
        e = np.exp(x.data - x.data.max(axis=-1, keepdims=True))
        assert np.allclose(softmax(x).data, e / e.sum(-1, keepdims=True), rtol=1e-5)

    def test_axis_argument(self):
        x = randt(3, 4)
        assert np.allclose(softmax(x, axis=0).data.sum(axis=0), 1.0, atol=1e-6)


class TestLogSoftmax:
    def test_exp_matches_softmax(self):
        x = randt(4, 6)
        assert np.allclose(np.exp(log_softmax(x).data), softmax(x).data, rtol=1e-5)

    def test_grad(self):
        x = randt(2, 3)
        log_softmax(x).sum().backward()
        s = softmax(Tensor(x.data)).data
        assert np.allclose(x.grad, 1.0 - 3 * s, atol=1e-5)


class TestCrossEntropy:
    def test_uniform_logits_loss_is_log_vocab(self):
        logits = Tensor(np.zeros((5, 8)), requires_grad=True)
        loss = cross_entropy(logits, np.zeros(5, dtype=np.int64))
        assert np.isclose(loss.item(), np.log(8), rtol=1e-5)

    def test_perfect_prediction_low_loss(self):
        logits = np.full((3, 4), -20.0)
        targets = np.array([0, 1, 2])
        for i, t in enumerate(targets):
            logits[i, t] = 20.0
        loss = cross_entropy(Tensor(logits, requires_grad=True), targets)
        assert loss.item() < 1e-4

    def test_gradient_is_probs_minus_onehot(self):
        logits = randt(6, 5)
        targets = np.array([0, 1, 2, 3, 4, 0])
        loss = cross_entropy(logits, targets)
        loss.backward()
        probs = softmax(Tensor(logits.data)).data
        onehot = np.eye(5)[targets]
        assert np.allclose(logits.grad, (probs - onehot) / 6, atol=1e-5)

    def test_ignore_index_masks_positions(self):
        logits = randt(4, 5)
        targets = np.array([1, -1, 2, -1])
        loss = cross_entropy(logits, targets, ignore_index=-1)
        loss.backward()
        assert np.allclose(logits.grad[1], 0.0)
        assert np.allclose(logits.grad[3], 0.0)
        assert not np.allclose(logits.grad[0], 0.0)

    def test_3d_logits(self):
        logits = randt(2, 3, 5)
        targets = np.zeros((2, 3), dtype=np.int64)
        loss = cross_entropy(logits, targets)
        loss.backward()
        assert logits.grad.shape == (2, 3, 5)

    def test_all_ignored_no_nan(self):
        logits = randt(2, 5)
        loss = cross_entropy(logits, np.array([-1, -1]), ignore_index=-1)
        assert np.isfinite(loss.item())
        assert loss.item() == 0.0

    def test_matches_log_softmax_composition(self):
        logits = randt(7, 9)
        targets = np.arange(7) % 9
        fused = cross_entropy(logits, targets).item()
        lp = log_softmax(Tensor(logits.data)).data
        manual = -lp[np.arange(7), targets].mean()
        assert np.isclose(fused, manual, rtol=1e-5)


class TestNLLHelper:
    def test_shape_and_values(self):
        logits = randt(2, 3, 5)
        targets = np.zeros((2, 3), dtype=np.int64)
        nll = nll_from_logits(logits, targets)
        assert nll.shape == (2, 3)
        assert np.isclose(nll.mean(), cross_entropy(logits, targets).item(), rtol=1e-5)


class TestActivations:
    def test_gelu_known_values(self):
        x = Tensor(np.array([0.0]), requires_grad=True)
        assert np.isclose(gelu(x).item(), 0.0, atol=1e-7)

    def test_gelu_monotone_tail(self):
        x = Tensor(np.array([3.0, 5.0]))
        out = gelu(x).data
        assert np.allclose(out, [3.0, 5.0], atol=0.01)

    def test_gelu_grad_finite_diff(self):
        x = randt(6)
        gelu(x).sum().backward()
        eps = 1e-3
        num = (gelu(Tensor(x.data + eps)).data - gelu(Tensor(x.data - eps)).data) / (2 * eps)
        assert np.allclose(x.grad, num, atol=1e-2)

    def test_silu_matches_definition(self):
        x = randt(5)
        assert np.allclose(silu(x).data, x.data / (1 + np.exp(-x.data)), rtol=1e-5)

    def test_silu_grad_finite_diff(self):
        x = randt(6, seed=3)
        silu(x).sum().backward()
        eps = 1e-3
        num = (silu(Tensor(x.data + eps)).data - silu(Tensor(x.data - eps)).data) / (2 * eps)
        assert np.allclose(x.grad, num, atol=1e-2)


class TestEmbedding:
    def test_lookup(self):
        w = randt(10, 4)
        ids = np.array([[1, 2], [3, 1]])
        out = embedding(w, ids)
        assert out.shape == (2, 2, 4)
        assert np.allclose(out.data[0, 0], w.data[1])

    def test_grad_accumulates_repeated_ids(self):
        w = randt(5, 3)
        ids = np.array([0, 0, 2])
        embedding(w, ids).sum().backward()
        assert np.allclose(w.grad[0], np.full(3, 2.0))
        assert np.allclose(w.grad[2], np.ones(3))
        assert np.allclose(w.grad[1], 0.0)


class TestDropout:
    def test_eval_mode_identity(self):
        x = randt(10)
        out = dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_p_zero_identity(self):
        x = randt(10)
        assert dropout(x, 0.0, np.random.default_rng(0)) is x

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            dropout(randt(3), 1.5, np.random.default_rng(0))

    def test_scaling_preserves_expectation(self):
        x = Tensor(np.ones(20000), requires_grad=True)
        out = dropout(x, 0.25, np.random.default_rng(0))
        assert np.isclose(out.data.mean(), 1.0, atol=0.02)

    def test_grad_matches_mask(self):
        x = randt(100)
        out = dropout(x, 0.5, np.random.default_rng(7))
        out.sum().backward()
        kept = out.data != 0
        assert np.allclose(x.grad[kept], 2.0)
        assert np.allclose(x.grad[~kept], 0.0)


class TestMaskedFill:
    def test_values_replaced(self):
        x = randt(2, 3)
        mask = np.array([[True, False, False], [False, True, False]])
        out = masked_fill(x, mask, -1e9)
        assert out.data[0, 0] == pytest.approx(-1e9)
        assert out.data[0, 1] == pytest.approx(x.data[0, 1])

    def test_grad_blocked_at_mask(self):
        x = randt(2, 2)
        mask = np.array([[True, False], [False, False]])
        masked_fill(x, mask, 0.0).sum().backward()
        assert x.grad[0, 0] == 0.0
        assert x.grad[1, 1] == 1.0
