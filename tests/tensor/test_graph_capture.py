"""Capture/replay contract of the explicit VJP graph.

Replay is an optimization, never an approximation: replayed values and
gradients must be bitwise equal to a fresh trace, version bumps must
invalidate exactly the graphs whose leaves changed (stale replay is
impossible), and the arena/capture/grad/fusion toggles are contextvars —
scoped per thread, never leaking across.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry, use_registry
from repro.tensor import (
    GraphCache,
    GraphRecorder,
    Tensor,
    arena_scope,
    dropout,
    fused_kernels,
    fused_kernels_enabled,
    get_arena,
    graph_capture,
    graph_capture_enabled,
    is_grad_enabled,
    no_grad,
    silu,
)


def randt(shape, seed, requires_grad=True):
    data = np.random.default_rng(seed).standard_normal(shape)
    return Tensor(data.astype(np.float32), requires_grad=requires_grad)


def _forward(x, w, b):
    h = x @ w + b
    return silu(h) * h


def _capture(x, w, b, with_loss=True):
    """Capture ``_forward`` (+loss) with ``x`` as the dynamic input."""
    with GraphRecorder() as rec:
        rec.add_input(x)
        y = _forward(x, w, b)
        loss = (y * y).sum() if with_loss else None
        graph = rec.finalize([y], loss=loss)
    return graph


class TestReplayBitwise:
    def test_forward_matches_fresh_trace(self):
        x, w, b = randt((4, 6), 0), randt((6, 6), 1), randt((6,), 2)
        graph = _capture(x, w, b, with_loss=False)

        x2 = np.random.default_rng(9).standard_normal((4, 6)).astype(np.float32)
        (replayed,) = graph.replay([x2])
        eager = _forward(Tensor(x2), w, b)
        np.testing.assert_array_equal(replayed, eager.data)

    def test_backward_matches_fresh_trace(self):
        x, w, b = randt((4, 6), 0), randt((6, 6), 1), randt((6,), 2)
        graph = _capture(x, w, b)
        x2 = np.random.default_rng(9).standard_normal((4, 6)).astype(np.float32)
        graph.replay([x2], run_backward=True)
        replay_grads = (w.grad.copy(), b.grad.copy())

        w2, b2 = randt((6, 6), 1), randt((6,), 2)
        y = _forward(Tensor(x2), w2, b2)
        (y * y).sum().backward()
        np.testing.assert_array_equal(replay_grads[0], w2.grad)
        np.testing.assert_array_equal(replay_grads[1], b2.grad)

    def test_repeat_replays_are_stable(self):
        x, w, b = randt((3, 5), 3), randt((5, 5), 4), randt((5,), 5)
        graph = _capture(x, w, b, with_loss=False)
        x2 = np.random.default_rng(6).standard_normal((3, 5)).astype(np.float32)
        (first,) = graph.replay([x2])
        first = first.copy()
        (second,) = graph.replay([x2])
        np.testing.assert_array_equal(first, second)


class TestInvalidation:
    def test_bump_version_invalidates_cached_graph(self):
        x, w, b = randt((4, 6), 0), randt((6, 6), 1), randt((6,), 2)
        cache = GraphCache()
        assert cache.store("k", _capture(x, w, b))
        assert cache.lookup("k") is not None

        w.data[:] += 1.0
        w.bump_version()
        reg = MetricsRegistry()
        with use_registry(reg):
            assert cache.lookup("k") is None
        assert reg.counter("tensor/graph/invalidations").value == 1

    def test_bump_invalidates_exactly_affected_graphs(self):
        xa, wa, ba = randt((4, 6), 0), randt((6, 6), 1), randt((6,), 2)
        xb, wb, bb = randt((4, 6), 3), randt((6, 6), 4), randt((6,), 5)
        cache = GraphCache()
        cache.store("a", _capture(xa, wa, ba))
        cache.store("b", _capture(xb, wb, bb))

        wa.bump_version()
        assert cache.lookup("a") is None
        assert cache.lookup("b") is not None

    def test_mutable_leaves_replay_fresh_data(self):
        """Optimizer-managed params bump freely; replays read them fresh."""
        x, w, b = randt((4, 6), 0), randt((6, 6), 1), randt((6,), 2)
        with GraphRecorder(mutable=[w, b]) as rec:
            rec.add_input(x)
            y = _forward(x, w, b)
            graph = rec.finalize([y])
        cache = GraphCache()
        cache.store("k", graph)

        w.data[:] *= 0.5
        w.bump_version()
        hit = cache.lookup("k")
        assert hit is not None
        x2 = np.random.default_rng(7).standard_normal((4, 6)).astype(np.float32)
        (replayed,) = hit.replay([x2])
        eager = _forward(Tensor(x2), w, b)
        np.testing.assert_array_equal(replayed, eager.data)

    def test_guard_failure_invalidates(self):
        x, w, b = randt((4, 6), 0), randt((6, 6), 1), randt((6,), 2)
        flag = {"ok": True}
        with GraphRecorder() as rec:
            rec.add_input(x)
            rec.add_guard(lambda: flag["ok"])
            y = _forward(x, w, b)
            graph = rec.finalize([y])
        cache = GraphCache()
        cache.store("k", graph)
        assert cache.lookup("k") is not None
        flag["ok"] = False
        assert cache.lookup("k") is None

    @settings(max_examples=20, deadline=None)
    @given(victim=st.integers(0, 2), seed=st.integers(0, 10_000))
    def test_stale_replay_impossible(self, victim, seed):
        """Property: after any leaf mutation + bump, the cached graph is
        unreachable and a fresh capture reproduces eager on the new data."""
        rng = np.random.default_rng(seed)
        x, w, b = randt((3, 4), seed), randt((4, 4), seed + 1), randt((4,), seed + 2)
        cache = GraphCache()
        cache.store("k", _capture(x, w, b, with_loss=False))

        leaf = (x, w, b)[victim]
        leaf.data[:] = rng.standard_normal(leaf.shape).astype(np.float32)
        leaf.bump_version()
        assert cache.lookup("k") is None

        fresh = _capture(x, w, b, with_loss=False)
        x2 = rng.standard_normal((3, 4)).astype(np.float32)
        (replayed,) = fresh.replay([x2])
        np.testing.assert_array_equal(replayed, _forward(Tensor(x2), w, b).data)


class TestUncacheable:
    def test_dropout_poisons_capture(self):
        x = randt((4, 6), 0)
        rng = np.random.default_rng(0)
        with GraphRecorder() as rec:
            rec.add_input(x)
            y = dropout(silu(x), 0.5, rng, training=True) * 2.0
            graph = rec.finalize([y])
        cache = GraphCache()
        assert not graph.cacheable
        assert not cache.store("k", graph)
        assert cache.known_uncacheable("k")
        assert cache.lookup("k") is None


class TestArena:
    def test_arena_toggle_is_value_invariant(self):
        x, w, b = randt((4, 6), 0), randt((6, 6), 1), randt((6,), 2)
        graph = _capture(x, w, b, with_loss=False)
        x2 = np.random.default_rng(8).standard_normal((4, 6)).astype(np.float32)
        with arena_scope(True):
            (with_arena,) = graph.replay([x2])
            with_arena = with_arena.copy()
        with arena_scope(False):
            (without,) = graph.replay([x2])
        np.testing.assert_array_equal(with_arena, without)

    def test_replays_pin_buffers_and_release_refills_the_pool(self):
        x, w, b = randt((8, 16), 0), randt((16, 16), 1), randt((16,), 2)
        graph = _capture(x, w, b, with_loss=False)
        x2 = np.random.default_rng(8).standard_normal((8, 16)).astype(np.float32)
        with arena_scope(True):
            graph.replay([x2])  # first replay takes + pins its buffers
            reg = MetricsRegistry()
            with use_registry(reg):
                graph.replay([x2])
            # Steady-state replays do zero allocator traffic.
            assert reg.counter("tensor/arena/reuse_hits").value == 0
            assert reg.counter("tensor/arena/bytes_reserved").value == 0
            # Releasing the graph refills the pool: an identical fresh
            # graph's first replay is served from the free lists.
            graph.release()
            fresh = _capture(x, w, b, with_loss=False)
            reg2 = MetricsRegistry()
            with use_registry(reg2):
                fresh.replay([x2])
            assert reg2.counter("tensor/arena/reuse_hits").value > 0

    def test_arena_never_pools_views(self):
        arena = get_arena()
        base = np.zeros((4, 4), dtype=np.float32)
        before = sum(len(v) for v in arena._free.values())
        arena.give(base[1:])
        assert sum(len(v) for v in arena._free.values()) == before


class TestContextvarIsolation:
    """The grad/fused/capture/arena flags are contextvars: a new thread
    starts from the defaults and scoped toggles never leak across."""

    def _probe_in_thread(self, fn):
        seen = {}
        thread = threading.Thread(target=lambda: seen.update(value=fn()))
        thread.start()
        thread.join()
        return seen["value"]

    def test_no_grad_is_thread_local(self):
        with no_grad():
            assert is_grad_enabled() is False
            assert self._probe_in_thread(is_grad_enabled) is True

    def test_fused_kernels_is_thread_local(self):
        with fused_kernels(False):
            assert fused_kernels_enabled() is False
            assert self._probe_in_thread(fused_kernels_enabled) is True

    def test_graph_capture_is_thread_local(self):
        with graph_capture(False):
            assert graph_capture_enabled() is False
            assert self._probe_in_thread(graph_capture_enabled) is True

    def test_thread_toggle_does_not_leak_back(self):
        def flip():
            with fused_kernels(False):
                return fused_kernels_enabled()

        assert self._probe_in_thread(flip) is False
        assert fused_kernels_enabled() is True
