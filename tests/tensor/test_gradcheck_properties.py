"""Property-based gradient checks: analytic grads must match finite
differences for arbitrary shapes and values."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, check_gradients, gelu, silu, softmax

SMALL_SHAPES = st.tuples(st.integers(1, 4), st.integers(1, 4))


def make_tensor(shape, seed):
    rng = np.random.default_rng(seed)
    # Float64 internally keeps finite differences accurate; Tensor downcasts,
    # so keep magnitudes moderate.
    return Tensor(rng.uniform(-2.0, 2.0, shape).astype(np.float32), requires_grad=True)


@settings(max_examples=25, deadline=None)
@given(shape=SMALL_SHAPES, seed=st.integers(0, 10_000))
def test_add_mul_chain_gradcheck(shape, seed):
    a = make_tensor(shape, seed)
    b = make_tensor(shape, seed + 1)
    check_gradients(lambda x, y: (x * y + x).sum(), [a, b])


@settings(max_examples=25, deadline=None)
@given(shape=SMALL_SHAPES, seed=st.integers(0, 10_000))
def test_tanh_sigmoid_gradcheck(shape, seed):
    a = make_tensor(shape, seed)
    check_gradients(lambda x: (x.tanh() + x.sigmoid()).sum(), [a])


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(1, 4), k=st.integers(1, 4), n=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
def test_matmul_gradcheck(m, k, n, seed):
    a = make_tensor((m, k), seed)
    b = make_tensor((k, n), seed + 1)
    check_gradients(lambda x, y: (x @ y).sum(), [a, b])


@settings(max_examples=25, deadline=None)
@given(shape=SMALL_SHAPES, seed=st.integers(0, 10_000))
def test_softmax_gradcheck(shape, seed):
    a = make_tensor(shape, seed)
    rng = np.random.default_rng(seed + 2)
    weights = rng.standard_normal(shape).astype(np.float32)
    check_gradients(lambda x: (softmax(x) * weights).sum(), [a])


@settings(max_examples=25, deadline=None)
@given(shape=SMALL_SHAPES, seed=st.integers(0, 10_000))
def test_gelu_silu_gradcheck(shape, seed):
    a = make_tensor(shape, seed)
    check_gradients(lambda x: (gelu(x) + silu(x)).sum(), [a])


@settings(max_examples=25, deadline=None)
@given(shape=SMALL_SHAPES, seed=st.integers(0, 10_000))
def test_reduction_gradcheck(shape, seed):
    a = make_tensor(shape, seed)
    check_gradients(lambda x: (x.mean(axis=1) * x.sum(axis=1)).sum(), [a])


@settings(max_examples=15, deadline=None)
@given(shape=SMALL_SHAPES, seed=st.integers(0, 10_000))
def test_div_exp_gradcheck(shape, seed):
    a = make_tensor(shape, seed)
    # Shift denominators away from zero.
    b = Tensor(np.abs(make_tensor(shape, seed + 1).data) + 1.0, requires_grad=True)
    check_gradients(lambda x, y: (x / y + (x * 0.3).exp()).sum(), [a, b])
