"""Fused kernels must be *bit-identical* to the op chains they replace.

The fast path's contract is "same numbers, less dispatch": each fused
forward mirrors the exact numpy op sequence of the composed trace, and
each fused backward mirrors the per-input accumulation order, so toggling
``fused_kernels`` cannot change a single bit of a kernel's outputs or its
input gradients.
"""

import numpy as np
import pytest

from repro.nn.layers import LayerNorm, RMSNorm
from repro.tensor import (
    Tensor,
    bias_act,
    check_gradients,
    fused_kernels,
    fused_kernels_enabled,
    gelu,
    set_fused_kernels,
    silu,
    silu_mul,
)


def randt(shape, seed, scale=1.0):
    data = np.random.default_rng(seed).standard_normal(shape) * scale
    return Tensor(data.astype(np.float32), requires_grad=True)


def run_both(build, *shapes_and_seeds):
    """Run ``build(*fresh_inputs)`` fused and composed; return both sides."""
    results = {}
    for enabled in (True, False):
        inputs = [randt(s, seed) for s, seed in shapes_and_seeds]
        with fused_kernels(enabled):
            out = build(*inputs)
            out.sum().backward()
        results[enabled] = (out.data, [t.grad for t in inputs])
    return results[True], results[False]


class TestToggle:
    def test_context_manager_restores(self):
        before = fused_kernels_enabled()
        with fused_kernels(not before):
            assert fused_kernels_enabled() is (not before)
        assert fused_kernels_enabled() is before

    def test_setter_returns_previous(self):
        before = set_fused_kernels(False)
        try:
            assert fused_kernels_enabled() is False
            assert set_fused_kernels(before) is False
        finally:
            set_fused_kernels(before)

    def test_default_is_enabled(self):
        assert fused_kernels_enabled() is True


class TestBitIdentity:
    def test_rms_norm(self):
        norm = RMSNorm(16)
        norm.weight.data = (
            np.random.default_rng(9).standard_normal(16).astype(np.float32)
        )
        (fused, fused_grads), (composed, composed_grads) = run_both(
            lambda x: norm(x), ((4, 16), 0)
        )
        assert np.array_equal(fused, composed)
        assert np.array_equal(fused_grads[0], composed_grads[0])

    def test_rms_norm_weight_grad(self):
        norm = RMSNorm(16)
        grads = {}
        for enabled in (True, False):
            norm.zero_grad()
            with fused_kernels(enabled):
                norm(randt((4, 16), 0)).sum().backward()
            grads[enabled] = norm.weight.grad.copy()
        assert np.array_equal(grads[True], grads[False])

    def test_layer_norm(self):
        norm = LayerNorm(16)
        norm.weight.data = (
            np.random.default_rng(9).standard_normal(16).astype(np.float32)
        )
        (fused, fused_grads), (composed, composed_grads) = run_both(
            lambda x: norm(x), ((4, 16), 1)
        )
        assert np.array_equal(fused, composed)
        assert np.array_equal(fused_grads[0], composed_grads[0])

    def test_layer_norm_param_grads(self):
        norm = LayerNorm(16)
        grads = {}
        for enabled in (True, False):
            norm.zero_grad()
            with fused_kernels(enabled):
                norm(randt((4, 16), 1)).sum().backward()
            grads[enabled] = (
                norm.weight.grad.copy(), norm.bias.grad.copy()
            )
        assert np.array_equal(grads[True][0], grads[False][0])
        assert np.array_equal(grads[True][1], grads[False][1])

    def test_silu_mul(self):
        def composed(a, b):
            return silu(a) * b

        fused_in = [randt((4, 16), 2), randt((4, 16), 3)]
        comp_in = [randt((4, 16), 2), randt((4, 16), 3)]
        out_f = silu_mul(*fused_in)
        out_c = composed(*comp_in)
        assert np.array_equal(out_f.data, out_c.data)
        out_f.sum().backward()
        out_c.sum().backward()
        for f, c in zip(fused_in, comp_in):
            assert np.array_equal(f.grad, c.grad)

    @pytest.mark.parametrize("act", ["gelu", "silu", "relu"])
    def test_bias_act(self, act):
        composed_act = {
            "gelu": gelu, "silu": silu, "relu": lambda t: t.relu()
        }[act]
        fused_in = [randt((4, 16), 4), randt((16,), 5)]
        comp_in = [randt((4, 16), 4), randt((16,), 5)]
        out_f = bias_act(fused_in[0], fused_in[1], act=act)
        out_c = composed_act(comp_in[0] + comp_in[1])
        assert np.array_equal(out_f.data, out_c.data)
        out_f.sum().backward()
        out_c.sum().backward()
        for f, c in zip(fused_in, comp_in):
            assert np.array_equal(f.grad, c.grad)

    def test_bias_act_without_bias(self):
        x1, x2 = randt((3, 8), 6), randt((3, 8), 6)
        out_f = bias_act(x1, None, act="gelu")
        out_c = gelu(x2)
        assert np.array_equal(out_f.data, out_c.data)

    def test_bias_act_rejects_unknown(self):
        with pytest.raises(ValueError):
            bias_act(randt((2, 4), 0), None, act="tanh")


class TestGradcheck:
    def test_rms_norm_gradcheck(self):
        from repro.tensor import rms_norm

        x = randt((3, 8), 0)
        w = randt((8,), 1)
        check_gradients(lambda x, w: rms_norm(x, w), [x, w])

    def test_layer_norm_gradcheck(self):
        from repro.tensor import layer_norm

        x = randt((3, 8), 2)
        w = randt((8,), 3)
        b = randt((8,), 4)
        check_gradients(lambda x, w, b: layer_norm(x, w, b), [x, w, b])

    def test_silu_mul_gradcheck(self):
        a, b = randt((3, 8), 5), randt((3, 8), 6)
        check_gradients(silu_mul, [a, b])

    def test_bias_act_gradcheck(self):
        x, b = randt((3, 8), 7), randt((8,), 8)
        check_gradients(lambda x, b: bias_act(x, b, act="silu"), [x, b])
