"""Fuzz the autograd engine: random composite graphs vs finite differences.

Builds random expression DAGs from a pool of binary/unary ops and checks
every leaf gradient against central differences — the strongest global
invariant of the engine.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, gelu, silu, softmax


def _safe_div(a, b):
    return a / (b * b + 1.0)


BINARY_OPS = [
    lambda a, b: a + b,
    lambda a, b: a - b,
    lambda a, b: a * b,
    _safe_div,
]

UNARY_OPS = [
    lambda a: a.tanh(),
    lambda a: a.sigmoid(),
    lambda a: a.relu(),
    lambda a: gelu(a),
    lambda a: silu(a),
    lambda a: softmax(a, axis=-1),
    lambda a: (a * 0.3).exp(),
    lambda a: a.reshape(-1).reshape(a.shape),
    lambda a: a * 2.0 - 1.0,
]


def build_graph(leaves, rng, depth):
    """Random expression over the leaves; returns a scalar Tensor."""
    nodes = list(leaves)
    for _ in range(depth):
        if rng.random() < 0.5 and len(nodes) >= 2:
            i, j = rng.integers(len(nodes)), rng.integers(len(nodes))
            op = BINARY_OPS[rng.integers(len(BINARY_OPS))]
            nodes.append(op(nodes[i], nodes[j]))
        else:
            i = rng.integers(len(nodes))
            op = UNARY_OPS[rng.integers(len(UNARY_OPS))]
            nodes.append(op(nodes[i]))
    total = nodes[-1]
    for n in nodes[:-1]:
        total = total + n * 0.1
    return (total * total).mean()


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), depth=st.integers(1, 6))
def test_random_graph_gradients_match_finite_differences(seed, depth):
    rng = np.random.default_rng(seed)
    shape = (int(rng.integers(1, 4)), int(rng.integers(1, 4)))
    leaf_values = [
        rng.uniform(-1.5, 1.5, shape).astype(np.float32) for _ in range(2)
    ]

    def forward(values, dtype=np.float32):
        leaves = [
            Tensor(np.asarray(v, dtype=dtype), requires_grad=True, dtype=dtype)
            for v in values
        ]
        out = build_graph(leaves, np.random.default_rng(seed), depth)
        return out, leaves

    out, leaves = forward(leaf_values)
    out.backward()
    analytic = [
        l.grad if l.grad is not None else np.zeros_like(l.data) for l in leaves
    ]

    # Central differences run in float64: a float32 forward quantizes
    # (plus - minus) at ulp(out)/2eps, which for large outputs exceeds
    # the comparison tolerance and flakes on deep graphs.
    eps = 1e-3
    fd_values = [v.astype(np.float64) for v in leaf_values]
    for li in range(len(fd_values)):
        numeric = np.zeros_like(fd_values[li])
        flat = fd_values[li].reshape(-1)
        num_flat = numeric.reshape(-1)
        for k in range(flat.size):
            orig = flat[k]
            flat[k] = orig + eps
            plus = float(forward(fd_values, dtype=np.float64)[0].data)
            flat[k] = orig - eps
            minus = float(forward(fd_values, dtype=np.float64)[0].data)
            flat[k] = orig
            num_flat[k] = (plus - minus) / (2 * eps)
        assert np.allclose(analytic[li], numeric, atol=2e-2, rtol=2e-2), (
            f"leaf {li}: analytic={analytic[li]}, numeric={numeric}"
        )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_gradient_accumulation_linearity(seed):
    """backward(g1) + backward(g2) on clones == backward(g1 + g2)."""
    rng = np.random.default_rng(seed)
    x_val = rng.uniform(-1, 1, (3,)).astype(np.float32)
    g1 = rng.uniform(-1, 1, (3,)).astype(np.float32)
    g2 = rng.uniform(-1, 1, (3,)).astype(np.float32)

    def run(seed_grad):
        x = Tensor(x_val, requires_grad=True)
        (x.tanh() * x).backward(seed_grad)
        return x.grad.copy()

    assert np.allclose(run(g1) + run(g2), run(g1 + g2), atol=1e-4)
