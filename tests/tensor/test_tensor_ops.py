"""Unit tests for the core Tensor arithmetic and autograd tape."""

import numpy as np
import pytest

from repro.tensor import Tensor, concat, no_grad, stack, where


def randt(*shape, seed=0, requires_grad=True):
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)


class TestConstruction:
    def test_float64_downcast_to_float32(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float32

    def test_int_tensor_cannot_require_grad(self):
        with pytest.raises(TypeError):
            Tensor(np.array([1, 2, 3]), requires_grad=True)

    def test_from_tensor_copies_reference(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert np.array_equal(a.data, b.data)

    def test_detach_cuts_tape(self):
        a = randt(3)
        b = (a * 2).detach()
        assert not b.requires_grad

    def test_shape_properties(self):
        t = randt(2, 3, 4)
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24
        assert len(t) == 2


class TestArithmeticForward:
    def test_add(self):
        a, b = randt(3, seed=1), randt(3, seed=2)
        assert np.allclose((a + b).data, a.data + b.data)

    def test_add_scalar(self):
        a = randt(3)
        assert np.allclose((a + 1.5).data, a.data + 1.5)
        assert np.allclose((1.5 + a).data, a.data + 1.5)

    def test_sub(self):
        a, b = randt(3, seed=1), randt(3, seed=2)
        assert np.allclose((a - b).data, a.data - b.data)
        assert np.allclose((2.0 - a).data, 2.0 - a.data)

    def test_mul_div(self):
        a, b = randt(4, seed=1), randt(4, seed=2)
        assert np.allclose((a * b).data, a.data * b.data)
        assert np.allclose((a / b).data, a.data / b.data, rtol=1e-5)
        assert np.allclose((2.0 / b).data, 2.0 / b.data, rtol=1e-5)

    def test_neg_pow(self):
        a = randt(4)
        assert np.allclose((-a).data, -a.data)
        assert np.allclose((a**2).data, a.data**2)

    def test_pow_requires_scalar(self):
        with pytest.raises(TypeError):
            randt(3) ** randt(3)

    def test_matmul_2d(self):
        a, b = randt(3, 4, seed=1), randt(4, 5, seed=2)
        assert np.allclose((a @ b).data, a.data @ b.data, rtol=1e-5)

    def test_matmul_batched(self):
        a, b = randt(2, 3, 4, seed=1), randt(2, 4, 5, seed=2)
        assert np.allclose((a @ b).data, a.data @ b.data, rtol=1e-5)

    def test_comparisons_are_constants(self):
        a, b = randt(3, seed=1), randt(3, seed=2)
        assert not (a > b).requires_grad
        assert np.array_equal((a > b).data, a.data > b.data)
        assert np.array_equal((a <= b).data, a.data <= b.data)


class TestBackwardBasics:
    def test_add_grads(self):
        a, b = randt(3, seed=1), randt(3, seed=2)
        (a + b).sum().backward()
        assert np.allclose(a.grad, np.ones(3))
        assert np.allclose(b.grad, np.ones(3))

    def test_mul_grads(self):
        a, b = randt(3, seed=1), randt(3, seed=2)
        (a * b).sum().backward()
        assert np.allclose(a.grad, b.data)
        assert np.allclose(b.grad, a.data)

    def test_broadcast_add_grad_shape(self):
        a = randt(3, 4, seed=1)
        b = randt(4, seed=2)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, np.full(4, 3.0))

    def test_broadcast_keepdim_axis(self):
        a = randt(3, 1, seed=1)
        b = randt(3, 5, seed=2)
        (a * b).sum().backward()
        assert a.grad.shape == (3, 1)
        assert np.allclose(a.grad[:, 0], b.data.sum(axis=1))

    def test_matmul_grads(self):
        a, b = randt(3, 4, seed=1), randt(4, 5, seed=2)
        (a @ b).sum().backward()
        assert np.allclose(a.grad, np.ones((3, 5)) @ b.data.T, rtol=1e-5, atol=1e-5)
        assert np.allclose(b.grad, a.data.T @ np.ones((3, 5)), rtol=1e-5, atol=1e-5)

    def test_grad_accumulates_across_uses(self):
        a = randt(3)
        (a + a).sum().backward()
        assert np.allclose(a.grad, np.full(3, 2.0))

    def test_backward_on_nonscalar_with_seed(self):
        a = randt(3)
        seed = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        (a * 2).backward(seed)
        assert np.allclose(a.grad, 2 * seed)

    def test_backward_seed_shape_mismatch_raises(self):
        a = randt(3)
        with pytest.raises(ValueError):
            (a * 2).backward(np.ones(4))

    def test_backward_without_grad_raises(self):
        a = Tensor([1.0, 2.0])
        with pytest.raises(RuntimeError):
            a.backward()

    def test_no_grad_context(self):
        a = randt(3)
        with no_grad():
            out = a * 2
        assert not out.requires_grad

    def test_diamond_graph_grad(self):
        # z = (a*2) + (a*3): grad must be 5 everywhere.
        a = randt(4)
        ((a * 2) + (a * 3)).sum().backward()
        assert np.allclose(a.grad, np.full(4, 5.0))

    def test_deep_chain_does_not_recurse(self):
        # Iterative topo-sort must handle depth beyond Python recursion limit.
        a = randt(2)
        x = a
        for _ in range(3000):
            x = x + 1.0
        x.sum().backward()
        assert np.allclose(a.grad, np.ones(2))


class TestShapeOps:
    def test_reshape_roundtrip_grad(self):
        a = randt(2, 6)
        a.reshape(3, 4).sum().backward()
        assert a.grad.shape == (2, 6)

    def test_reshape_tuple_arg(self):
        a = randt(2, 6)
        assert a.reshape((4, 3)).shape == (4, 3)

    def test_transpose_default(self):
        a = randt(2, 3, 4)
        out = a.transpose()
        assert out.shape == (4, 3, 2)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)

    def test_transpose_axes(self):
        a = randt(2, 3, 4)
        out = a.transpose(1, 0, 2)
        assert out.shape == (3, 2, 4)
        (out * out).sum().backward()
        assert np.allclose(a.grad, 2 * a.data, rtol=1e-5)

    def test_swapaxes(self):
        a = randt(2, 3, 4)
        out = a.swapaxes(-1, -2)
        assert out.shape == (2, 4, 3)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)

    def test_getitem_slice_grad(self):
        a = randt(5, 3)
        a[1:4].sum().backward()
        expected = np.zeros((5, 3))
        expected[1:4] = 1.0
        assert np.allclose(a.grad, expected)

    def test_getitem_fancy_index_accumulates(self):
        a = randt(4, 2)
        idx = np.array([0, 0, 3])
        a[idx].sum().backward()
        expected = np.zeros((4, 2))
        expected[0] = 2.0
        expected[3] = 1.0
        assert np.allclose(a.grad, expected)

    def test_getitem_tensor_index(self):
        a = randt(4, 2)
        idx = Tensor(np.array([1, 2]))
        assert a[idx].shape == (2, 2)

    def test_concat_grads(self):
        a, b = randt(2, 3, seed=1), randt(4, 3, seed=2)
        concat([a, b], axis=0).sum().backward()
        assert np.allclose(a.grad, np.ones((2, 3)))
        assert np.allclose(b.grad, np.ones((4, 3)))

    def test_concat_axis1(self):
        a, b = randt(2, 3, seed=1), randt(2, 5, seed=2)
        out = concat([a, b], axis=1)
        assert out.shape == (2, 8)
        (out * 2).sum().backward()
        assert np.allclose(a.grad, np.full((2, 3), 2.0))

    def test_stack_grads(self):
        a, b = randt(3, seed=1), randt(3, seed=2)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        assert np.allclose(a.grad, np.ones(3))

    def test_where_grads(self):
        cond = np.array([True, False, True])
        a, b = randt(3, seed=1), randt(3, seed=2)
        where(cond, a, b).sum().backward()
        assert np.allclose(a.grad, [1.0, 0.0, 1.0])
        assert np.allclose(b.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis_keepdims(self):
        a = randt(3, 4)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (3, 1)
        out.sum().backward()
        assert np.allclose(a.grad, np.ones((3, 4)))

    def test_mean_grad(self):
        a = randt(4)
        a.mean().backward()
        assert np.allclose(a.grad, np.full(4, 0.25))

    def test_mean_axis(self):
        a = randt(2, 5)
        a.mean(axis=1).sum().backward()
        assert np.allclose(a.grad, np.full((2, 5), 0.2))

    def test_var_matches_numpy(self):
        a = randt(3, 4)
        assert np.allclose(a.var(axis=1).data, a.data.var(axis=1), rtol=1e-4, atol=1e-6)

    def test_max_grad_single(self):
        a = Tensor(np.array([1.0, 5.0, 3.0]), requires_grad=True)
        a.max().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])

    def test_max_grad_ties_split(self):
        a = Tensor(np.array([2.0, 2.0, 1.0]), requires_grad=True)
        a.max().backward()
        assert np.allclose(a.grad, [0.5, 0.5, 0.0])

    def test_max_axis(self):
        a = randt(3, 4)
        out = a.max(axis=1)
        assert np.allclose(out.data, a.data.max(axis=1))
        out.sum().backward()
        assert np.allclose(a.grad.sum(), 3.0)

    def test_min(self):
        a = randt(3, 4)
        assert np.allclose(a.min(axis=0).data, a.data.min(axis=0), rtol=1e-6)

    def test_argmax(self):
        a = randt(3, 4)
        assert np.array_equal(a.argmax(axis=1), a.data.argmax(axis=1))


class TestElementwise:
    def test_exp_log_roundtrip(self):
        a = Tensor(np.abs(np.random.default_rng(0).standard_normal(5)) + 0.5,
                   requires_grad=True)
        out = a.exp().log()
        assert np.allclose(out.data, a.data, rtol=1e-5)

    def test_exp_grad(self):
        a = randt(4)
        a.exp().sum().backward()
        assert np.allclose(a.grad, np.exp(a.data), rtol=1e-5)

    def test_log_grad(self):
        a = Tensor(np.array([1.0, 2.0, 4.0]), requires_grad=True)
        a.log().sum().backward()
        assert np.allclose(a.grad, 1.0 / a.data, rtol=1e-5)

    def test_tanh_grad(self):
        a = randt(4)
        a.tanh().sum().backward()
        assert np.allclose(a.grad, 1 - np.tanh(a.data) ** 2, rtol=1e-4)

    def test_sigmoid_bounds(self):
        a = Tensor(np.array([-100.0, 0.0, 100.0]), requires_grad=True)
        s = a.sigmoid()
        assert np.all(s.data >= 0) and np.all(s.data <= 1)

    def test_relu(self):
        a = Tensor(np.array([-1.0, 0.0, 2.0]), requires_grad=True)
        a.relu().sum().backward()
        assert np.allclose(a.grad, [0.0, 0.0, 1.0])

    def test_sqrt(self):
        a = Tensor(np.array([4.0, 9.0]), requires_grad=True)
        out = a.sqrt()
        assert np.allclose(out.data, [2.0, 3.0])
        out.sum().backward()
        assert np.allclose(a.grad, [0.25, 1 / 6], rtol=1e-4)

    def test_clip_grad_masks_out_of_range(self):
        a = Tensor(np.array([-2.0, 0.5, 3.0]), requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])
