"""The Tensor parameter version counter (fold-cache invalidation hook)."""

import pickle

import numpy as np

from repro.tensor import Tensor


class TestVersionCounter:
    def test_initial_version_positive(self):
        t = Tensor(np.zeros(3))
        assert t.version >= 1

    def test_rebind_bumps(self):
        t = Tensor(np.zeros(3))
        v = t.version
        t.data = np.ones(3, dtype=np.float32)
        assert t.version == v + 1

    def test_read_does_not_bump(self):
        t = Tensor(np.zeros(3))
        v = t.version
        _ = t.data
        _ = t.data.sum()
        assert t.version == v

    def test_inplace_edit_needs_manual_bump(self):
        t = Tensor(np.zeros(3))
        v = t.version
        t.data[:] = 1.0  # bypasses the setter
        assert t.version == v
        t.bump_version()
        assert t.version == v + 1

    def test_optimizer_style_update_bumps(self):
        from repro.nn import SGD, Parameter

        p = Parameter(np.ones(4, dtype=np.float32))
        v = p.version
        p.grad = np.ones(4, dtype=np.float32)
        SGD([p], lr=0.1).step()
        assert p.version > v

    def test_pickle_roundtrip_keeps_payload(self):
        t = Tensor(np.arange(4, dtype=np.float32))
        t2 = pickle.loads(pickle.dumps(t))
        assert np.array_equal(t2.data, t.data)
        assert t2.version >= 1
