"""Tests for gradient checkpointing."""

import numpy as np
import pytest

from repro.nn import Linear
from repro.tensor import Tensor, checkpoint, no_grad


def randt(*shape, seed=0):
    return Tensor(np.random.default_rng(seed).standard_normal(shape),
                  requires_grad=True)


class TestCheckpointCorrectness:
    def test_forward_matches_direct(self):
        layer = Linear(8, 8, rng=np.random.default_rng(0))
        x = randt(4, 8)
        direct = layer(x)
        ckpt = checkpoint(layer, Tensor(x.data, requires_grad=True))
        assert np.allclose(direct.data, ckpt.data, atol=1e-6)

    def test_input_gradients_match_direct(self):
        layer = Linear(8, 8, rng=np.random.default_rng(0))
        x1 = randt(4, 8, seed=1)
        x2 = Tensor(x1.data.copy(), requires_grad=True)
        (layer(x1) ** 2).sum().backward()
        direct_grad = x1.grad.copy()
        layer.zero_grad()
        (checkpoint(layer, x2) ** 2).sum().backward()
        assert np.allclose(direct_grad, x2.grad, atol=1e-5)

    def test_parameter_gradients_match_direct(self):
        layer_a = Linear(8, 8, rng=np.random.default_rng(0))
        layer_b = Linear(8, 8, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((4, 8)).astype(np.float32)
        (layer_a(Tensor(x, requires_grad=True)) ** 2).sum().backward()
        (checkpoint(layer_b, Tensor(x, requires_grad=True)) ** 2).sum().backward()
        assert np.allclose(layer_a.weight.grad, layer_b.weight.grad, atol=1e-5)
        assert np.allclose(layer_a.bias.grad, layer_b.bias.grad, atol=1e-5)

    def test_chained_checkpoints(self):
        layers = [Linear(8, 8, rng=np.random.default_rng(i)) for i in range(3)]
        x_direct = randt(2, 8, seed=5)
        x_ckpt = Tensor(x_direct.data.copy(), requires_grad=True)
        h = x_direct
        for layer in layers:
            h = layer(h).relu()
        h.sum().backward()
        direct_grads = [l.weight.grad.copy() for l in layers]
        for l in layers:
            l.zero_grad()
        h = x_ckpt
        for layer in layers:
            h = checkpoint(lambda t, l=layer: l(t).relu(), h)
        h.sum().backward()
        for l, g in zip(layers, direct_grads):
            assert np.allclose(l.weight.grad, g, atol=1e-5)
        assert np.allclose(x_direct.grad, x_ckpt.grad, atol=1e-5)

    def test_frozen_input_still_trains_params(self):
        layer = Linear(8, 8, rng=np.random.default_rng(0))
        x = Tensor(np.ones((2, 8)))  # no grad on input
        checkpoint(layer, x).sum().backward()
        assert layer.weight.grad is not None

    def test_no_grad_mode_is_plain_forward(self):
        layer = Linear(8, 8, rng=np.random.default_rng(0))
        with no_grad():
            out = checkpoint(layer, Tensor(np.ones((2, 8))))
        assert not out.requires_grad


class TestCheckpointedTransformer:
    def test_run_blocks_checkpointed_matches(self, pretrained_model):
        ids = np.random.default_rng(0).integers(0, 32, (2, 8))
        h = pretrained_model.embed_tokens(ids)
        direct = pretrained_model.run_blocks(Tensor(h.data), 0, 3)
        ckpt = pretrained_model.run_blocks(
            Tensor(h.data), 0, 3, checkpoint_blocks=True
        )
        assert np.allclose(direct.data, ckpt.data, atol=1e-5)

    def test_checkpointed_training_matches_gradients(self, pretrained_model):
        from repro.tensor import cross_entropy

        ids = np.random.default_rng(0).integers(0, 32, (2, 8))
        targets = np.random.default_rng(1).integers(0, 32, (2, 8))

        def loss_with(checkpointed):
            pretrained_model.zero_grad()
            h = pretrained_model.embed_tokens(ids)
            h = pretrained_model.run_blocks(
                h, 0, None, checkpoint_blocks=checkpointed
            )
            loss = cross_entropy(pretrained_model.head(h), targets)
            loss.backward()
            name, param = next(iter(pretrained_model.named_parameters()))
            return loss.item(), {
                n: p.grad.copy()
                for n, p in pretrained_model.named_parameters()
                if p.grad is not None
            }

        loss_d, grads_d = loss_with(False)
        loss_c, grads_c = loss_with(True)
        assert loss_d == pytest.approx(loss_c, rel=1e-5)
        assert set(grads_d) == set(grads_c)
        for name in grads_d:
            assert np.allclose(grads_d[name], grads_c[name], atol=1e-4), name

    def test_checkpoint_with_cache_raises(self, pretrained_model):
        h = pretrained_model.embed_tokens(np.zeros((1, 4), dtype=np.int64))
        with pytest.raises(ValueError):
            pretrained_model.run_blocks(
                h, 0, 2, caches=pretrained_model.new_caches(),
                checkpoint_blocks=True,
            )


class TestCheckpointWithFastPath:
    """Checkpointing composed with eager reclamation and the grad-free
    frozen prefix: all three tape disciplines must agree on gradients."""

    def test_checkpoint_with_eager_reclaim(self):
        layers = [Linear(8, 8, rng=np.random.default_rng(i)) for i in range(2)]

        def loss(x, reclaim):
            h = x
            for layer in layers:
                h = checkpoint(lambda t, l=layer: l(t).relu(), h)
            h.sum().backward(reclaim=reclaim)

        x1 = randt(2, 8, seed=3)
        loss(x1, reclaim=False)
        plain = [l.weight.grad.copy() for l in layers] + [x1.grad.copy()]
        for l in layers:
            l.zero_grad()
        x2 = Tensor(x1.data.copy(), requires_grad=True)
        loss(x2, reclaim=True)
        reclaimed = [l.weight.grad for l in layers] + [x2.grad]
        for a, b in zip(plain, reclaimed):
            assert np.array_equal(a, b)

    def test_trainer_paths_agree_on_window_gradients(
        self, pretrained_model, adapt_corpus
    ):
        """Plain, checkpointed and fast-path (grad-free prefix + reclaim)
        train steps produce matching gradients for the 2-block window."""
        from repro.adaptive import AdaptiveLayerTrainer, AdaptiveTuningConfig
        from repro.data import lm_batches
        from repro.tensor import cross_entropy

        inputs, targets = next(
            lm_batches(adapt_corpus, 4, 16, 1, np.random.default_rng(0))
        )

        def window_grads(fast_path, checkpoint_blocks, reclaim):
            trainer = AdaptiveLayerTrainer(
                pretrained_model,
                AdaptiveTuningConfig(
                    window=2, exit_points=[4], schedule="fixed_shallow",
                    fast_path=fast_path,
                    checkpoint_blocks=checkpoint_blocks,
                    eager_reclaim=reclaim,
                ),
            )
            pretrained_model.zero_grad()
            trainer.exit_heads.zero_grad()
            window = trainer.schedule.select(0, np.random.default_rng(0))
            logits = trainer._logits_for_window(inputs, window)
            cross_entropy(logits, targets).backward(reclaim=reclaim)
            return {
                f"block{i}.{n}": p.grad.copy()
                for i in range(window.start, window.stop)
                for n, p in pretrained_model.blocks[i].named_parameters()
            }

        plain = window_grads(False, False, False)
        fast = window_grads(True, False, True)
        ckpt = window_grads(True, True, True)
        assert set(plain) == set(fast) == set(ckpt)
        for name in plain:
            # Fast path is bit-identical; checkpoint replays the forward
            # so its grads agree numerically.
            assert np.array_equal(plain[name], fast[name]), name
            assert np.allclose(plain[name], ckpt[name], atol=1e-4), name


class TestCheckpointedTrainer:
    def test_checkpointed_trainer_learns(self, pretrained_model, adapt_corpus):
        from repro.adaptive import checkpointed_trainer
        from repro.data import lm_batches

        trainer = checkpointed_trainer(pretrained_model, lr=1e-3)
        stats = trainer.train(
            lm_batches(adapt_corpus, 4, 16, 10, np.random.default_rng(0))
        )
        assert stats[-1].loss < stats[0].loss

    def test_checkpointed_memory_much_smaller(self, pretrained_model):
        from repro.adaptive import checkpointed_trainer, vanilla_trainer

        plain = vanilla_trainer(pretrained_model).memory_report(4, 32)
        ckpt = checkpointed_trainer(pretrained_model).memory_report(4, 32)
        assert ckpt.activation_bytes < plain.activation_bytes / 4
        # but optimizer/grad state is unchanged (all params still train)
        assert ckpt.optimizer_bytes == plain.optimizer_bytes

    def test_checkpoint_recompute_workload(self):
        from repro.hw import total_macs, tuning_iteration_workload
        from repro.nn import TransformerConfig

        cfg = TransformerConfig(vocab_size=64, dim=64, num_layers=4,
                                num_heads=4, max_len=128)
        plain = total_macs(tuning_iteration_workload(cfg, 2, 16, 4, 0))
        ckpt = total_macs(
            tuning_iteration_workload(cfg, 2, 16, 4, 0, checkpoint_recompute=True)
        )
        assert ckpt > plain * 1.2  # extra forward replay
