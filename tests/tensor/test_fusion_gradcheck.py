"""Gradcheck sweep over every fused kernel and the auto-fuser.

Each hand-fused kernel (silu·mul, bias+act, RMSNorm, LayerNorm) must pass
finite-difference gradient checks at odd shapes in both float32 and
float64 — and so must the composed op chain it replaces (the ``composed``
variants mirror the nn layers' ``fused_kernels``-off expressions).  The
finalize-time auto-fuser must rewrite a captured composed chain into the
fused ops *without changing a bit* of the replayed values or gradients.
"""

import numpy as np
import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.tensor import (
    GraphRecorder,
    Tensor,
    bias_act,
    check_gradients,
    gelu,
    layer_norm,
    rms_norm,
    silu,
    silu_mul,
)

ODD_SHAPES = [(3, 5), (1, 7), (2, 3, 5)]
DTYPES = [np.float32, np.float64]
EPS = 1e-5


def randt(shape, seed, dtype, scale=1.0, shift=0.0):
    data = np.random.default_rng(seed).standard_normal(shape) * scale + shift
    return Tensor(data.astype(dtype), requires_grad=True)


def _feature_param(shape, seed, dtype, shift=0.0):
    return randt(shape[-1:], seed, dtype, scale=0.3, shift=shift)


def _composed_rms(x, w):
    # Mirrors RMSNorm.forward with fused_kernels off.
    ms = (x * x).mean(axis=-1, keepdims=True)
    return x * ((ms + EPS) ** -0.5) * w


def _composed_ln(x, w, b):
    # Mirrors LayerNorm.forward with fused_kernels off.
    mu = x.mean(axis=-1, keepdims=True)
    centered = x - mu
    var = (centered * centered).mean(axis=-1, keepdims=True)
    return centered * ((var + EPS) ** -0.5) * w + b


def _case(kernel, shape, dtype, fused):
    """Return (loss_fn, inputs) for one kernel in one dispatch mode."""
    if kernel == "silu_mul":
        fn = silu_mul if fused else (lambda a, b: silu(a) * b)
        return (
            lambda a, b: fn(a, b).sum(),
            [randt(shape, 0, dtype), randt(shape, 1, dtype)],
        )
    if kernel.startswith("bias_"):
        act = kernel.split("_", 1)[1]
        composed = {"gelu": gelu, "silu": silu, "relu": lambda t: t.relu()}[act]
        fn = (
            (lambda x, b: bias_act(x, b, act))
            if fused
            else (lambda x, b: composed(x + b))
        )
        # Shift relu inputs away from the kink: finite differences straddle it.
        shift = 0.5 if act == "relu" else 0.0
        return (
            lambda x, b: fn(x, b).sum(),
            [
                randt(shape, 2, dtype, shift=shift),
                _feature_param(shape, 3, dtype, shift=shift),
            ],
        )
    if kernel == "rms_norm":
        fn = (lambda x, w: rms_norm(x, w, EPS)) if fused else _composed_rms
        return (
            lambda x, w: (fn(x, w) * 0.5).sum(),
            [randt(shape, 4, dtype), _feature_param(shape, 5, dtype, shift=1.0)],
        )
    if kernel == "layer_norm":
        fn = (
            (lambda x, w, b: layer_norm(x, w, b, EPS)) if fused else _composed_ln
        )
        return (
            lambda x, w, b: (fn(x, w, b) * 0.5).sum(),
            [
                randt(shape, 6, dtype),
                _feature_param(shape, 7, dtype, shift=1.0),
                _feature_param(shape, 8, dtype),
            ],
        )
    raise AssertionError(kernel)


KERNELS = ["silu_mul", "bias_gelu", "bias_silu", "bias_relu", "rms_norm", "layer_norm"]


@pytest.mark.parametrize("fused", [True, False], ids=["fused", "composed"])
@pytest.mark.parametrize("dtype", DTYPES, ids=["f32", "f64"])
@pytest.mark.parametrize("shape", ODD_SHAPES, ids=str)
@pytest.mark.parametrize("kernel", KERNELS)
def test_kernel_gradcheck(kernel, shape, dtype, fused):
    fn, inputs = _case(kernel, shape, dtype, fused)
    check_gradients(fn, inputs)


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("shape", ODD_SHAPES, ids=str)
def test_fused_matches_composed_bitwise(kernel, shape):
    sides = []
    for fused in (True, False):
        fn, inputs = _case(kernel, shape, np.float32, fused)
        loss = fn(*inputs)
        loss.backward()
        sides.append((loss.data, [t.grad for t in inputs]))
    np.testing.assert_array_equal(sides[0][0], sides[1][0])
    for fused_grad, composed_grad in zip(sides[0][1], sides[1][1]):
        np.testing.assert_array_equal(fused_grad, composed_grad)


# ----------------------------------------------------------------------
# auto-fused chains: finalize-time fusion is bitwise-invisible


def _chain(x, w, b):
    h = silu(x) * x              # → SiluMulOp by rule fusion
    h = _composed_rms(h, w)      # composed chain → RmsNormOp by rule fusion
    return gelu(h + b)           # add→gelu → BiasActOp by rule fusion


def _capture_chain(fuse, seed=0):
    """Capture the composed chain; returns (graph, leaves)."""
    x = randt((4, 6), seed, np.float32)
    w = _feature_param((4, 6), seed + 1, np.float32, shift=1.0)
    b = _feature_param((4, 6), seed + 2, np.float32)
    with GraphRecorder() as rec:
        rec.add_input(x)
        y = _chain(x, w, b)
        loss = (y * y).sum()
        graph = rec.finalize([y], loss=loss, fuse=fuse)
    return graph, (x, w, b)


def test_auto_fusion_rewrites_the_chain():
    reg = MetricsRegistry()
    with use_registry(reg):
        fused_graph, _ = _capture_chain(fuse=True)
    plain_graph, _ = _capture_chain(fuse=False)
    assert reg.counter("tensor/fusion/rule_hits").value >= 3
    assert len(fused_graph.steps) < len(plain_graph.steps)
    fused_names = {s.op.name for s in fused_graph.steps}
    assert {"silu_mul", "rms_norm", "bias_act"} <= fused_names


def test_auto_fused_chain_replay_bitwise():
    fused_graph, (_, wf, bf) = _capture_chain(fuse=True)
    plain_graph, (_, wp, bp) = _capture_chain(fuse=False)
    x2 = np.random.default_rng(9).standard_normal((4, 6)).astype(np.float32)

    (y_fused,) = fused_graph.replay([x2], run_backward=True)
    (y_plain,) = plain_graph.replay([x2], run_backward=True)
    np.testing.assert_array_equal(y_fused, y_plain)
    np.testing.assert_array_equal(wf.grad, wp.grad)
    np.testing.assert_array_equal(bf.grad, bp.grad)


@pytest.mark.parametrize("dtype", DTYPES, ids=["f32", "f64"])
@pytest.mark.parametrize("shape", [(3, 5), (2, 3, 7)], ids=str)
def test_auto_fused_chain_gradcheck(shape, dtype):
    x = randt(shape, 20, dtype)
    w = _feature_param(shape, 21, dtype, shift=1.0)
    b = _feature_param(shape, 22, dtype)
    check_gradients(lambda a, c, d: (_chain(a, c, d) * 0.5).sum(), [x, w, b])
