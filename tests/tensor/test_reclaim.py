"""Tests for eager tape reclamation (``backward(reclaim=True)``)."""

import numpy as np
import pytest

from repro.nn import Linear
from repro.tensor import Tensor, profile_tape


def chain(x):
    h = (x * 2.0).relu()
    h = h * h
    return h.sum()


class TestReclaimSemantics:
    def test_interior_buffers_freed_and_guarded(self):
        x = Tensor(np.ones((4, 4), dtype=np.float32), requires_grad=True)
        h = x * 2.0
        out = h.sum()
        out.backward(reclaim=True)
        with pytest.raises(RuntimeError, match="reclaimed"):
            _ = h.data

    def test_root_and_leaves_survive(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        out = (x * 2.0).sum()
        out.backward(reclaim=True)
        assert out.item() == 6.0  # root kept
        assert np.array_equal(x.data, np.ones(3, dtype=np.float32))
        assert x.grad is not None

    def test_gradients_identical_with_and_without_reclaim(self):
        data = np.random.default_rng(0).standard_normal((5, 3))
        x1 = Tensor(data, requires_grad=True)
        x2 = Tensor(data, requires_grad=True)
        chain(x1).backward()
        chain(x2).backward(reclaim=True)
        assert np.array_equal(x1.grad, x2.grad)

    def test_sibling_grad_aliasing_regression(self):
        # z = x + y hands BOTH parents the same incoming grad array; the
        # in-place accumulation fast path must not mutate a buffer a
        # sibling also holds.
        for reclaim in (False, True):
            x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
            y = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
            z = x + y
            t = x * 3.0  # x accumulates a second contribution
            (z.sum() + t.sum()).backward(reclaim=reclaim)
            assert np.array_equal(x.grad, np.full(4, 4.0, dtype=np.float32))
            assert np.array_equal(y.grad, np.ones(4, dtype=np.float32))

    def test_interior_grads_cleared_either_way(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        h = x * 2.0
        h.sum().backward()
        assert h.grad is None  # interior grads are freed once consumed

    def test_reclaim_through_linear_layer(self):
        layer = Linear(8, 8, rng=np.random.default_rng(0))
        x1 = Tensor(np.ones((2, 8), dtype=np.float32), requires_grad=True)
        (layer(x1) ** 2).sum().backward()
        w_grad = layer.weight.grad.copy()
        x_grad = x1.grad.copy()
        layer.zero_grad()
        x2 = Tensor(np.ones((2, 8), dtype=np.float32), requires_grad=True)
        (layer(x2) ** 2).sum().backward(reclaim=True)
        assert np.array_equal(layer.weight.grad, w_grad)
        assert np.array_equal(x2.grad, x_grad)


class TestReclaimMemory:
    def test_freed_bytes_counted(self):
        with profile_tape() as stats:
            x = Tensor(np.ones((16, 16), dtype=np.float32),
                       requires_grad=True)
            h = x * 2.0
            h = h.relu()
            h.sum().backward(reclaim=True)
        assert stats.freed_nodes >= 2
        assert stats.freed_bytes >= 2 * 16 * 16 * 4

    def test_peak_lower_with_reclaim(self):
        # Leaf gradients stack up as backward walks the chain; without
        # reclamation the whole tape stays live underneath them, with it
        # the tape shrinks as the leaf grads grow.
        rng = np.random.default_rng(0)
        weights = [
            Tensor(rng.standard_normal((32, 32)), requires_grad=True)
            for _ in range(6)
        ]

        def run(reclaim):
            for w in weights:
                w.grad = None
            with profile_tape() as stats:
                h = Tensor(rng.standard_normal((32, 32)), requires_grad=True)
                for w in weights:
                    h = (h * w).relu()
                h.sum().backward(reclaim=reclaim)
            return stats.peak_bytes

        assert run(True) < run(False)

    def test_no_reclaim_frees_nothing(self):
        with profile_tape() as stats:
            x = Tensor(np.ones((4, 4), dtype=np.float32), requires_grad=True)
            (x * 2.0).sum().backward()
        assert stats.freed_nodes == 0
        assert stats.freed_bytes == 0
