"""Scheduler priority tiers and deadline-aware preemption.

Preemption must be a pure scheduling decision: deterministic victim
choice under fixed seeds, preempted-then-resumed requests produce
exactly the tokens an uninterrupted run would, and every admission
control decision keeps emitting the existing ``serve/*`` telemetry.
"""

import numpy as np
import pytest

from repro.obs import use_registry
from repro.serve import (
    CachePool,
    GenerationEngine,
    Request,
    Scheduler,
    SchedulerConfig,
    serve_batch,
)


def make_scheduler(model, *, budget=10_000, max_batch=8, share=False):
    engine = GenerationEngine(model)
    pool = CachePool(model.num_layers, budget, share_prefixes=share)
    return Scheduler(
        engine, pool, SchedulerConfig(max_batch_size=max_batch, max_steps=500)
    )


class TestPriorityAdmission:
    def test_same_tier_is_fifo(self, pretrained_model):
        with use_registry():
            sched = make_scheduler(pretrained_model, max_batch=1)
            for i in range(3):
                sched.submit(Request(f"r{i}", [1 + i], max_new_tokens=2))
            results = sched.run()
        order = [r.request_id for r in sorted(results, key=lambda r: r.admitted_step)]
        assert order == ["r0", "r1", "r2"]

    def test_higher_tier_jumps_the_queue(self, pretrained_model):
        with use_registry():
            sched = make_scheduler(pretrained_model, max_batch=1)
            sched.submit(Request("bg1", [1], max_new_tokens=2, priority=5))
            sched.submit(Request("bg2", [2], max_new_tokens=2, priority=5))
            sched.submit(Request("fg", [3], max_new_tokens=2, priority=0))
            results = {r.request_id: r for r in sched.run()}
        # fg admits before bg2 even though submitted last.
        assert results["fg"].admitted_step < results["bg2"].admitted_step

    def test_negative_priority_rejected_at_construction(self):
        with pytest.raises(ValueError, match="priority"):
            Request("r", [1], max_new_tokens=1, priority=-1)


class TestPreemption:
    def test_high_priority_preempts_when_batch_is_full(self, pretrained_model):
        with use_registry() as reg:
            sched = make_scheduler(pretrained_model, max_batch=1)
            sched.submit(
                Request("lo", [1, 2, 3], max_new_tokens=30, priority=3, greedy=True)
            )
            for _ in range(3):
                sched.step()
            sched.submit(Request("hi", [4, 5], max_new_tokens=4, priority=0))
            results = {r.request_id: r for r in sched.run()}
            assert reg.counter("serve/preemptions").value == 1
            assert reg.counter("serve/resumes").value == 1
        assert results["lo"].preemptions == 1
        assert results["hi"].finish_reason == "length"
        # hi ran to completion before lo resumed.
        assert results["hi"].finished_step <= results["lo"].finished_step

    @pytest.mark.parametrize("share", [False, True])
    def test_resumed_output_is_identical(self, pretrained_model, share):
        request = Request(
            "lo", [1, 2, 3, 4], max_new_tokens=25, priority=3, greedy=True
        )
        with use_registry():
            sched = make_scheduler(pretrained_model, max_batch=1, share=share)
            sched.submit(request)
            for _ in range(4):
                sched.step()
            sched.submit(Request("hi", [9], max_new_tokens=3, priority=0))
            results = {r.request_id: r for r in sched.run()}
        assert results["lo"].preemptions == 1
        solo = serve_batch(
            pretrained_model,
            [Request("lo", [1, 2, 3, 4], max_new_tokens=25, greedy=True)],
        )[0]
        assert results["lo"].tokens == solo.tokens

    def test_resumed_sampled_output_is_identical(self, pretrained_model):
        """RNG state survives preemption: sampled requests also resume
        onto exactly their uninterrupted trajectory."""
        def req():
            return Request(
                "lo", [2, 2, 2], max_new_tokens=20, priority=4,
                greedy=False, temperature=0.8, seed=123,
            )

        with use_registry():
            sched = make_scheduler(pretrained_model, max_batch=1)
            sched.submit(req())
            for _ in range(5):
                sched.step()
            sched.submit(Request("hi", [7], max_new_tokens=2, priority=0))
            results = {r.request_id: r for r in sched.run()}
        assert results["lo"].preemptions == 1
        solo = serve_batch(pretrained_model, [req()])[0]
        assert results["lo"].tokens == solo.tokens

    def test_preemption_is_deterministic(self, pretrained_model):
        def run():
            with use_registry():
                sched = make_scheduler(pretrained_model, max_batch=2)
                sched.submit(
                    Request("a", [1], max_new_tokens=20, priority=2,
                            deadline_steps=100)
                )
                sched.submit(
                    Request("b", [2], max_new_tokens=20, priority=2,
                            deadline_steps=40)
                )
                sched.step()
                sched.submit(Request("hi", [3], max_new_tokens=3, priority=0))
                return {
                    r.request_id: (tuple(r.tokens), r.preemptions,
                                   r.finished_step)
                    for r in sched.run()
                }

        assert run() == run()

    def test_victim_is_deadline_aware(self, pretrained_model):
        """The victim is the active request with the most deadline slack
        — the one that can best afford to wait."""
        with use_registry():
            sched = make_scheduler(pretrained_model, max_batch=2)
            sched.submit(
                Request("tight", [1], max_new_tokens=30, priority=2,
                        deadline_steps=40)
            )
            sched.submit(
                Request("loose", [2], max_new_tokens=30, priority=2,
                        deadline_steps=400)
            )
            sched.step()
            sched.submit(Request("hi", [3], max_new_tokens=3, priority=0))
            results = {r.request_id: r for r in sched.run()}
        assert results["loose"].preemptions == 1
        assert results["tight"].preemptions == 0

    def test_no_deadline_counts_as_infinite_slack(self, pretrained_model):
        with use_registry():
            sched = make_scheduler(pretrained_model, max_batch=2)
            sched.submit(
                Request("bounded", [1], max_new_tokens=30, priority=2,
                        deadline_steps=200)
            )
            sched.submit(
                Request("unbounded", [2], max_new_tokens=30, priority=2)
            )
            sched.step()
            sched.submit(Request("hi", [3], max_new_tokens=3, priority=0))
            results = {r.request_id: r for r in sched.run()}
        assert results["unbounded"].preemptions == 1
        assert results["bounded"].preemptions == 0

    def test_equal_tier_never_preempts(self, pretrained_model):
        with use_registry() as reg:
            sched = make_scheduler(pretrained_model, max_batch=1)
            sched.submit(Request("a", [1], max_new_tokens=10, priority=1))
            sched.step()
            sched.submit(Request("b", [2], max_new_tokens=2, priority=1))
            sched.run()
            assert reg.counter("serve/preemptions").value == 0

    def test_preempted_releases_its_lease(self, pretrained_model):
        with use_registry():
            engine = GenerationEngine(pretrained_model)
            pool = CachePool(pretrained_model.num_layers, 10_000)
            sched = Scheduler(
                engine, pool, SchedulerConfig(max_batch_size=1, max_steps=500)
            )
            sched.submit(Request("lo", [1, 2], max_new_tokens=30, priority=3))
            sched.step()
            assert pool.active_requests() == ["lo"]
            sched.submit(Request("hi", [3], max_new_tokens=10, priority=0))
            sched.step()
            assert pool.active_requests() == ["hi"]

    def test_resume_leases_back_its_cached_prefix(self, pretrained_model):
        """With prefix sharing, the preempted request's computed state is
        promoted to the trie and leased back on resume instead of being
        recomputed from scratch."""
        with use_registry() as reg:
            sched = make_scheduler(pretrained_model, max_batch=1, share=True)
            sched.submit(
                Request("lo", [1, 2, 3, 4, 5], max_new_tokens=30, priority=3)
            )
            for _ in range(6):
                sched.step()
            before = reg.counter("serve/pool/prefix_tokens_reused").value
            sched.submit(Request("hi", [9, 8], max_new_tokens=3, priority=0))
            sched.run()
            reused = reg.counter("serve/pool/prefix_tokens_reused").value - before
        # lo had prompt(5) + ~6 generated tokens cached at preemption;
        # the resume must lease most of that back (all but the final
        # uncached position).
        assert reused >= 5

    def test_preempted_then_expired_keeps_partial_output(self, pretrained_model):
        with use_registry():
            sched = make_scheduler(pretrained_model, max_batch=1)
            sched.submit(
                Request("lo", [1, 2], max_new_tokens=50, priority=3,
                        deadline_steps=6)
            )
            for _ in range(3):
                sched.step()
            # hi occupies the only slot past lo's deadline.
            sched.submit(Request("hi", [3], max_new_tokens=10, priority=0))
            results = {r.request_id: r for r in sched.run()}
        assert results["lo"].finish_reason == "deadline"
        assert results["lo"].preemptions == 1
        assert len(results["lo"].tokens) >= 1  # partial output survives


class TestAdmissionTelemetry:
    def test_rejection_emits_counters_and_rows(self, pretrained_model):
        with use_registry() as reg:
            sched = make_scheduler(pretrained_model, budget=8)
            result = sched.submit(
                Request("big", [1] * 6, max_new_tokens=10)
            )
            assert result is not None
            assert result.finish_reason == "rejected"
            assert reg.counter("serve/submitted").value == 1
            assert reg.counter("serve/rejected").value == 1
            rows = reg.snapshot()["tables"]["serve/requests"]
            assert rows[0]["finish_reason"] == "rejected"

    def test_preemption_rows_carry_the_count(self, pretrained_model):
        with use_registry() as reg:
            sched = make_scheduler(pretrained_model, max_batch=1)
            sched.submit(Request("lo", [1], max_new_tokens=20, priority=3))
            sched.step()
            sched.submit(Request("hi", [2], max_new_tokens=2, priority=0))
            sched.run()
            rows = {
                row["request_id"]: row
                for row in reg.snapshot()["tables"]["serve/requests"]
            }
        assert rows["lo"]["preemptions"] == 1
        assert rows["hi"]["preemptions"] == 0
