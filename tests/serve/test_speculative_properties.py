"""Property tests: speculative greedy decode ≡ vanilla greedy decode.

Self-speculative decoding must be a pure throughput optimization — for
any model (including structurally sliced checkpoints), any prompt, any
draft length and any batch composition, greedy outputs are identical
token-for-token to the non-speculative engine, the acceptance counters
balance exactly, and ``draft_k=0`` *is* the vanilla engine.
"""

import numpy as np
import pytest

from repro.adaptive import ExitHeadSet
from repro.nn.slicing import rotate_and_slice
from repro.obs import use_registry
from repro.serve import GenerationEngine, Request, serve_batch

VOCAB = 32


class Entry:
    """Minimal decode-entry: what the engine requires of scheduler rows."""

    def __init__(self, caches, last_token):
        self.caches = caches
        self.last_token = last_token


def vanilla_greedy(model, prompt, n):
    engine = GenerationEngine(model)
    caches = model.new_caches()
    logits = engine.prefill(prompt, caches)
    out = [int(logits.argmax())]
    entry = Entry(caches, out[-1])
    while len(out) < n:
        step_logits, _ = engine.decode_step([entry])
        token = int(step_logits[0].argmax())
        out.append(token)
        entry.last_token = token
    return out


def speculative_greedy(model, heads, prompt, n, k, draft_exit=None):
    engine = GenerationEngine(
        model, draft_heads=heads, draft_exit=draft_exit, draft_k=k
    )
    caches = model.new_caches()
    logits = engine.prefill(prompt, caches)
    out = [int(logits.argmax())]
    entry = Entry(caches, out[-1])
    while len(out) < n:
        emitted = engine.speculative_decode_step(
            [entry], max_new=n - len(out)
        )
        out.extend(emitted[0])
        entry.last_token = out[-1]
    return out


@pytest.fixture
def heads(pretrained_model):
    return ExitHeadSet(pretrained_model, exit_points=[2, 3, 6], seed=1)


class TestGreedyEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_prompts_and_draft_lengths(
        self, pretrained_model, heads, seed
    ):
        rng = np.random.default_rng(seed)
        prompt = [
            int(t) for t in rng.integers(0, VOCAB, size=int(rng.integers(2, 14)))
        ]
        n = int(rng.integers(3, 24))
        k = int(rng.integers(1, 6))
        expected = vanilla_greedy(pretrained_model, prompt, n)
        got = speculative_greedy(pretrained_model, heads, prompt, n, k)
        assert got == expected

    @pytest.mark.parametrize("exit_point", [2, 3])
    def test_every_draft_depth_is_equivalent(
        self, pretrained_model, heads, exit_point
    ):
        prompt = [3, 1, 4, 1, 5]
        expected = vanilla_greedy(pretrained_model, prompt, 16)
        got = speculative_greedy(
            pretrained_model, heads, prompt, 16, k=3, draft_exit=exit_point
        )
        assert got == expected

    def test_stacked_batch_matches_per_request_decodes(
        self, pretrained_model, heads
    ):
        """Batched speculative rows (padded stacked caches) produce the
        same tokens as serving each request alone."""
        engine = GenerationEngine(pretrained_model, draft_heads=heads, draft_k=3)
        prompts = [[1, 2, 3], [7, 6, 5, 4, 3, 2], [9], [8, 8, 8, 1]]
        entries, outs = [], []
        for prompt in prompts:
            caches = pretrained_model.new_caches()
            logits = engine.prefill(prompt, caches)
            token = int(logits.argmax())
            outs.append([token])
            entries.append(Entry(caches, token))
        n = 14
        while any(len(o) < n for o in outs):
            for row, emitted in enumerate(engine.speculative_decode_step(entries)):
                outs[row].extend(emitted)
                entries[row].last_token = outs[row][-1]
        for prompt, out in zip(prompts, outs):
            assert out[:n] == vanilla_greedy(pretrained_model, prompt, n)

    def test_serve_batch_speculative_and_shared_is_identical(
        self, pretrained_model, heads
    ):
        """End-to-end: speculation + prefix sharing change throughput,
        never tokens — including for sampled (non-greedy) requests."""
        rng = np.random.default_rng(11)
        system = [int(t) for t in rng.integers(0, VOCAB, size=9)]

        def build():
            return [
                Request(
                    f"r{i}",
                    prompt=system + [int(t) for t in rng_i.integers(0, VOCAB, 3)],
                    max_new_tokens=5 + i,
                    greedy=(i % 3 != 0),
                    temperature=0.9,
                    seed=i,
                    priority=i % 2,
                )
                for i, rng_i in enumerate(
                    np.random.default_rng(5 + j) for j in range(6)
                )
            ]

        base = serve_batch(pretrained_model, build())
        spec = serve_batch(
            pretrained_model, build(),
            draft_heads=heads, draft_k=3, share_prefixes=True,
        )
        for b, s in zip(base, spec):
            assert b.tokens == s.tokens
            assert b.finish_reason == s.finish_reason


class TestAcceptanceCounters:
    def test_counters_sum_exactly(self, pretrained_model, heads):
        with use_registry() as reg:
            speculative_greedy(pretrained_model, heads, [1, 2, 3], 20, k=4)
            cycles = reg.counter("serve/spec/cycles").value
            rows = reg.counter("serve/spec/rows").value
            drafted = reg.counter("serve/spec/draft_tokens").value
            accepted = reg.counter("serve/spec/accepted_tokens").value
            emitted = reg.counter("serve/spec/emitted_tokens").value
        assert cycles >= 1
        # One entry per cycle; every cycle emits its accepted run plus
        # exactly one full-model token.
        assert rows == cycles
        assert emitted == accepted + rows
        assert 0 <= accepted <= drafted
        assert drafted <= 4 * cycles

    def test_emitted_matches_tokens_returned(self, pretrained_model, heads):
        engine = GenerationEngine(pretrained_model, draft_heads=heads, draft_k=3)
        caches = pretrained_model.new_caches()
        logits = engine.prefill([2, 7, 1], caches)
        entry = Entry(caches, int(logits.argmax()))
        with use_registry() as reg:
            emitted = engine.speculative_decode_step([entry])
            assert reg.counter("serve/spec/emitted_tokens").value == len(emitted[0])
            assert reg.counter("serve/decode_tokens").value == len(emitted[0])


class TestDegeneration:
    def test_k0_is_the_vanilla_engine(self, pretrained_model, heads):
        engine = GenerationEngine(pretrained_model, draft_heads=heads, draft_k=0)
        assert not engine.speculative
        assert engine.draft_exit is None
        with pytest.raises(ValueError, match="draft_k"):
            engine.speculative_decode_step([])

    def test_max_new_one_falls_back_to_single_token(
        self, pretrained_model, heads
    ):
        engine = GenerationEngine(pretrained_model, draft_heads=heads, draft_k=4)
        caches = pretrained_model.new_caches()
        logits = engine.prefill([5, 5], caches)
        entry = Entry(caches, int(logits.argmax()))
        with use_registry() as reg:
            emitted = engine.speculative_decode_step([entry], max_new=1)
            assert len(emitted[0]) == 1
            # The fallback is the vanilla decode path: no cycle counted.
            assert reg.counter("serve/spec/cycles").value == 0

    def test_near_context_limit_falls_back(self, pretrained_model, heads):
        max_len = pretrained_model.config.max_len
        engine = GenerationEngine(pretrained_model, draft_heads=heads, draft_k=4)
        caches = pretrained_model.new_caches()
        prompt = [1] * (max_len - 2)
        logits = engine.prefill(prompt, caches)
        entry = Entry(caches, int(logits.argmax()))
        # Cache holds max_len - 2 entries; k is clamped to 1, then a
        # second cycle has no draft room at all and falls back.
        first = engine.speculative_decode_step([entry])
        assert 1 <= len(first[0]) <= 2

    def test_negative_k_rejected(self, pretrained_model, heads):
        with pytest.raises(ValueError, match=">= 0"):
            GenerationEngine(pretrained_model, draft_heads=heads, draft_k=-1)

    def test_speculation_requires_draft_heads(self, pretrained_model):
        with pytest.raises(ValueError, match="draft_heads"):
            GenerationEngine(pretrained_model, draft_k=2)

    def test_draft_exit_must_have_a_head(self, pretrained_model, heads):
        with pytest.raises(ValueError, match="no draft head"):
            GenerationEngine(
                pretrained_model, draft_heads=heads, draft_exit=4, draft_k=2
            )


class TestSlicedCheckpoints:
    """Speculative decode on PR 6 rotate-and-slice models: draft taps sit
    at reduced residual widths behind shortcut_Q junctions."""

    @pytest.fixture
    def sliced(self, pretrained_model, pretrain_corpus):
        rng = np.random.default_rng(0)
        from repro.data import lm_batches

        calib, _ = next(lm_batches(pretrain_corpus, 16, 24, 1, rng))
        rotate_and_slice(pretrained_model, calib, 0.5)
        return pretrained_model

    def test_sliced_spec_matches_its_own_vanilla(self, sliced):
        heads = ExitHeadSet(sliced, exit_points=[2, 3], seed=1)
        for seed in range(3):
            rng = np.random.default_rng(seed)
            prompt = [int(t) for t in rng.integers(0, VOCAB, size=6)]
            expected = vanilla_greedy(sliced, prompt, 15)
            got = speculative_greedy(sliced, heads, prompt, 15, k=3)
            assert got == expected

    def test_sliced_stacked_batch_matches(self, sliced):
        heads = ExitHeadSet(sliced, exit_points=[2, 3], seed=1)
        engine = GenerationEngine(sliced, draft_heads=heads, draft_k=2)
        prompts = [[1, 2, 3, 4], [9, 8], [7, 7, 7, 7, 7, 1]]
        entries, outs = [], []
        for prompt in prompts:
            caches = sliced.new_caches()
            logits = engine.prefill(prompt, caches)
            token = int(logits.argmax())
            outs.append([token])
            entries.append(Entry(caches, token))
        while any(len(o) < 10 for o in outs):
            for row, emitted in enumerate(engine.speculative_decode_step(entries)):
                outs[row].extend(emitted)
                entries[row].last_token = outs[row][-1]
        for prompt, out in zip(prompts, outs):
            assert out[:10] == vanilla_greedy(sliced, prompt, 10)

    def test_draft_head_selection_on_sliced_model(self, sliced):
        heads = ExitHeadSet(sliced, exit_points=[2, 3, 6], seed=1)
        assert heads.draft_exit_point() == 3
        # The selected head's projection matches the tap's sliced width.
        tap_dim = sliced.blocks[2].mlp.down_proj.out_features
        head = heads.head_for(3)
        assert head.proj is not None
        assert head.proj.in_features == tap_dim
