"""Tests for the KV-cache pool: budgets, lifecycle, recycling."""

import numpy as np
import pytest

from repro.obs import use_registry
from repro.serve import CachePool


def entry(batch=1, heads=2, seq=1, head_dim=4, fill=1.0):
    k = np.full((batch, heads, seq, head_dim), fill, dtype=np.float32)
    return k, k.copy()


class TestConstruction:
    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            CachePool(0, 100)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            CachePool(4, 0)


class TestAllocation:
    def test_block_has_one_cache_per_layer(self):
        pool = CachePool(6, 100)
        block = pool.allocate("r0", 10)
        assert len(block) == 6
        assert all(c.length == 0 for c in block)

    def test_double_allocate_raises(self):
        pool = CachePool(2, 100)
        pool.allocate("r0", 10)
        with pytest.raises(ValueError, match="already holds"):
            pool.allocate("r0", 10)

    def test_over_budget_raises(self):
        pool = CachePool(2, 16)
        pool.allocate("r0", 10)
        with pytest.raises(ValueError, match="exceeds budget"):
            pool.allocate("r1", 7)

    def test_zero_token_reservation_raises(self):
        pool = CachePool(2, 16)
        with pytest.raises(ValueError, match=">= 1 token"):
            pool.allocate("r0", 0)

    def test_can_reserve_tracks_budget(self):
        pool = CachePool(2, 16)
        assert pool.can_reserve(16)
        pool.allocate("r0", 10)
        assert pool.can_reserve(6)
        assert not pool.can_reserve(7)


class TestRelease:
    def test_release_frees_budget(self):
        pool = CachePool(2, 16)
        pool.allocate("r0", 16)
        assert not pool.can_reserve(1)
        pool.release("r0")
        assert pool.can_reserve(16)
        assert pool.active_requests() == []

    def test_release_unknown_raises(self):
        pool = CachePool(2, 16)
        with pytest.raises(KeyError):
            pool.release("ghost")

    def test_released_blocks_are_recycled_reset(self):
        pool = CachePool(3, 100)
        block = pool.allocate("r0", 10)
        for cache in block:
            cache.append(*entry(seq=5))
        pool.release("r0")
        reused = pool.allocate("r1", 10)
        # Same containers, emptied.
        assert all(a is b for a, b in zip(block, reused))
        assert all(c.length == 0 for c in reused)

    def test_recycle_counter(self):
        with use_registry() as reg:
            pool = CachePool(2, 100)
            pool.allocate("r0", 10)
            pool.release("r0")
            pool.allocate("r1", 10)
            assert reg.counter("serve/pool/allocs").value == 1
            assert reg.counter("serve/pool/recycles").value == 1


class TestAccounting:
    def test_occupancy_is_reserved_fraction(self):
        pool = CachePool(2, 20)
        assert pool.occupancy() == 0.0
        pool.allocate("r0", 5)
        assert pool.occupancy() == pytest.approx(0.25)
        pool.allocate("r1", 15)
        assert pool.occupancy() == pytest.approx(1.0)
        pool.release("r0")
        assert pool.occupancy() == pytest.approx(0.75)

    def test_resident_vs_reserved(self):
        pool = CachePool(2, 20)
        block = pool.allocate("r0", 10)
        assert pool.reserved_tokens == 10
        assert pool.resident_tokens() == 0
        for cache in block:
            cache.append(*entry(seq=3))
        assert pool.resident_tokens() == 3

    def test_active_requests(self):
        pool = CachePool(2, 20)
        pool.allocate("a", 5)
        pool.allocate("b", 5)
        assert sorted(pool.active_requests()) == ["a", "b"]
