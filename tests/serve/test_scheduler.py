"""Tests for the continuous-batching scheduler.

Covers admission control under the token budget, FIFO ordering,
graceful rejection, deadlines (queued and active), eos termination,
and the run() safety bound.
"""

import numpy as np
import pytest

from repro.obs import use_registry
from repro.serve import (
    CachePool,
    GenerationEngine,
    Request,
    Scheduler,
    SchedulerConfig,
    serve_batch,
)


def make_scheduler(model, budget, max_batch_size=8, max_steps=500):
    engine = GenerationEngine(model)
    pool = CachePool(model.num_layers, budget)
    config = SchedulerConfig(max_batch_size=max_batch_size,
                             max_steps=max_steps)
    return Scheduler(engine, pool, config), pool


class TestAdmission:
    def test_budget_limits_concurrency(self, pretrained_model):
        # Each request reserves 8 tokens; budget 16 admits two at a time.
        scheduler, pool = make_scheduler(pretrained_model, budget=16)
        reqs = [Request(f"r{i}", prompt=[1, 2, 3, 4], max_new_tokens=4)
                for i in range(5)]
        for r in reqs:
            assert scheduler.submit(r) is None
        peak = 0
        while not scheduler.idle:
            scheduler.step()
            peak = max(peak, scheduler.active_count)
            assert pool.reserved_tokens <= 16
        assert peak == 2
        results = scheduler.run()
        assert len(results) == 5
        assert all(r.finish_reason == "length" for r in results)

    def test_fifo_admission_order(self, pretrained_model):
        scheduler, _ = make_scheduler(pretrained_model, budget=8,
                                      max_batch_size=1)
        reqs = [Request(f"r{i}", prompt=[1, 2], max_new_tokens=2)
                for i in range(4)]
        for r in reqs:
            scheduler.submit(r)
        results = {r.request_id: r for r in scheduler.run()}
        admitted = [results[f"r{i}"].admitted_step for i in range(4)]
        assert admitted == sorted(admitted)

    def test_batch_size_cap(self, pretrained_model):
        scheduler, _ = make_scheduler(pretrained_model, budget=10_000,
                                      max_batch_size=3)
        for i in range(6):
            scheduler.submit(Request(f"r{i}", prompt=[1], max_new_tokens=5))
        peak = 0
        while not scheduler.idle:
            scheduler.step()
            peak = max(peak, scheduler.active_count)
        assert peak == 3


class TestRejection:
    def test_request_bigger_than_budget(self, pretrained_model):
        scheduler, _ = make_scheduler(pretrained_model, budget=8)
        result = scheduler.submit(
            Request("big", prompt=[1] * 6, max_new_tokens=6)
        )
        assert result is not None
        assert result.finish_reason == "rejected"
        assert result.tokens == []
        assert scheduler.idle

    def test_request_bigger_than_context(self, pretrained_model):
        max_len = pretrained_model.config.max_len
        scheduler, _ = make_scheduler(pretrained_model, budget=10_000)
        result = scheduler.submit(
            Request("long", prompt=[1] * max_len, max_new_tokens=8)
        )
        assert result is not None and result.finish_reason == "rejected"

    def test_rejected_results_come_back_from_serve_batch(
        self, pretrained_model
    ):
        results = serve_batch(
            pretrained_model,
            [
                Request("ok", prompt=[1, 2], max_new_tokens=2),
                Request("big", prompt=[1, 2], max_new_tokens=20),
            ],
            max_resident_tokens=10,
        )
        assert [r.finish_reason for r in results] == ["length", "rejected"]


class TestDeadlines:
    def test_starved_queued_request_expires(self, pretrained_model):
        # Budget fits only the first request; the second has a deadline
        # shorter than the first's run and must expire while queued.
        scheduler, _ = make_scheduler(pretrained_model, budget=12)
        scheduler.submit(Request("slow", prompt=[1, 2], max_new_tokens=10))
        scheduler.submit(Request("urgent", prompt=[1, 2], max_new_tokens=10,
                                 deadline_steps=3))
        results = {r.request_id: r for r in scheduler.run()}
        assert results["urgent"].finish_reason == "deadline"
        assert results["urgent"].tokens == []
        assert results["slow"].finish_reason == "length"

    def test_active_request_evicted_with_partial_output(
        self, pretrained_model
    ):
        scheduler, pool = make_scheduler(pretrained_model, budget=100)
        scheduler.submit(Request("r", prompt=[1, 2], max_new_tokens=50,
                                 deadline_steps=4))
        results = scheduler.run()
        assert results[0].finish_reason == "deadline"
        assert 0 < len(results[0].tokens) < 50
        assert pool.active_requests() == []

    def test_deadline_counter(self, pretrained_model):
        with use_registry() as reg:
            scheduler, _ = make_scheduler(pretrained_model, budget=100)
            scheduler.submit(Request("r", prompt=[1], max_new_tokens=50,
                                     deadline_steps=2))
            scheduler.run()
            assert reg.counter("serve/deadline_evictions").value == 1


class TestTermination:
    def test_eos_stops_generation(self, pretrained_model):
        first = pretrained_model.generate([1, 2, 3], 1, greedy=True)[0]
        results = serve_batch(
            pretrained_model,
            [Request("r", prompt=[1, 2, 3], max_new_tokens=10,
                     eos_token=first)],
        )
        assert results[0].finish_reason == "eos"
        assert results[0].tokens == [first]

    def test_max_steps_guard(self, pretrained_model):
        scheduler, _ = make_scheduler(pretrained_model, budget=100,
                                      max_steps=2)
        scheduler.submit(Request("r", prompt=[1], max_new_tokens=50))
        with pytest.raises(RuntimeError, match="max_steps"):
            scheduler.run()


class TestTelemetry:
    def test_lifecycle_counters_and_rows(self, pretrained_model):
        with use_registry() as reg:
            serve_batch(
                pretrained_model,
                [Request(f"r{i}", prompt=[1, 2], max_new_tokens=3)
                 for i in range(3)],
            )
            assert reg.counter("serve/submitted").value == 3
            assert reg.counter("serve/admitted").value == 3
            assert reg.counter("serve/completed").value == 3
            assert reg.counter("serve/tokens_generated").value == 9
            snapshot = reg.snapshot()
            assert len(snapshot["tables"]["serve/requests"]) == 3
            assert snapshot["tables"]["serve/steps"], "step rows recorded"

    def test_ttft_recorded(self, pretrained_model):
        results = serve_batch(
            pretrained_model,
            [Request("r", prompt=[1, 2], max_new_tokens=2)],
        )
        assert results[0].ttft_steps >= 0
        assert results[0].first_token_step == results[0].admitted_step


class TestResultBookkeeping:
    def test_results_in_submission_order(self, pretrained_model):
        reqs = [Request(f"r{i}", prompt=[1] * (1 + i % 3),
                        max_new_tokens=2 + i % 4) for i in range(6)]
        results = serve_batch(pretrained_model, reqs, max_batch_size=2,
                              max_resident_tokens=30)
        assert [r.request_id for r in results] == [r.request_id for r in reqs]

    def test_prompt_len_and_steps_recorded(self, pretrained_model):
        res = serve_batch(
            pretrained_model,
            [Request("r", prompt=[5, 6, 7], max_new_tokens=2)],
        )[0]
        assert res.prompt_len == 3
        assert res.submitted_step >= 0
        assert res.finished_step >= res.admitted_step >= res.submitted_step


def test_request_validation():
    with pytest.raises(ValueError, match="empty prompt"):
        Request("r", prompt=[], max_new_tokens=1)
    with pytest.raises(ValueError, match="max_new_tokens"):
        Request("r", prompt=[1], max_new_tokens=0)
    with pytest.raises(ValueError, match="top_k / top_p"):
        Request("r", prompt=[1], max_new_tokens=1, top_k=2, top_p=0.5)
    with pytest.raises(ValueError, match="deadline_steps"):
        Request("r", prompt=[1], max_new_tokens=1, deadline_steps=0)
    assert Request("r", prompt=np.array([1, 2]), max_new_tokens=3)\
        .reserved_tokens == 5
