"""Graph capture in the generation engine.

The captured per-bucket decode step (and the speculative draft/verify
graphs) must be invisible at the token level: greedy outputs with
capture on equal the direct path's exactly — including across batch
membership changes, and across structural slicing, where the graphs'
parameter-identity guards must invalidate every stale capture.
"""

import numpy as np

from repro.adaptive import ExitHeadSet
from repro.data import lm_batches
from repro.nn import TransformerLM
from repro.nn.slicing import rotate_and_slice
from repro.obs import MetricsRegistry, use_registry
from repro.serve import GenerationEngine
from repro.tensor import graph_capture

from ..conftest import small_config

PROMPTS = [[1, 2, 3, 4], [7, 1, 9], [4, 4, 9, 2, 5], [30, 0]]


class Entry:
    def __init__(self, caches, last_token):
        self.caches = caches
        self.last_token = last_token


def prefill_entries(engine, prompts=PROMPTS):
    entries = []
    for prompt in prompts:
        caches = engine.model.new_caches()
        logits = engine.prefill(prompt, caches)
        entries.append(Entry(caches, int(logits.argmax())))
    return entries


def greedy(engine, entries, n):
    tokens = [[] for _ in entries]
    for _ in range(n):
        logits, _ = engine.decode_step(entries)
        nxt = logits.argmax(axis=-1)
        for b, entry in enumerate(entries):
            entry.last_token = int(nxt[b])
            tokens[b].append(entry.last_token)
    return tokens


def clone(pretrained_state):
    model = TransformerLM(small_config())
    model.load_state_dict(pretrained_state)
    return model


def calib_ids(corpus, seed=5):
    ids, _ = next(lm_batches(corpus, 4, 24, 1, np.random.default_rng(seed)))
    return ids


class TestTokenIdentity:
    def test_decode_tokens_identical(self, pretrained_model):
        engine = GenerationEngine(pretrained_model)
        results = {}
        for capture in (False, True):
            with graph_capture(capture):
                results[capture] = greedy(engine, prefill_entries(engine), 10)
        assert results[True] == results[False]

    def test_decode_identical_across_batch_changes(self, pretrained_model):
        """Entries leaving and rejoining the batch (eviction/readmission)
        invalidate the persistent decode slabs, never the tokens."""
        engine = GenerationEngine(pretrained_model)
        results = {}
        for capture in (False, True):
            with graph_capture(capture):
                entries = prefill_entries(engine)
                tokens = greedy(engine, entries, 3)
                sub = greedy(engine, entries[:2], 3)  # two rows evicted
                back = greedy(engine, entries, 3)     # and readmitted
                results[capture] = (tokens, sub, back)
        assert results[True] == results[False]

    def test_speculative_tokens_identical(self, pretrained_model):
        heads = ExitHeadSet(pretrained_model, exit_points=[3])
        results = {}
        for capture in (False, True):
            engine = GenerationEngine(
                pretrained_model, draft_heads=heads, draft_exit=3, draft_k=3
            )
            with graph_capture(capture):
                entries = prefill_entries(engine)
                tokens = [[e.last_token] for e in entries]
                while min(len(t) for t in tokens) < 12:
                    emitted = engine.speculative_decode_step(entries, max_new=12)
                    for b, entry in enumerate(entries):
                        tokens[b].extend(emitted[b])
                        entry.last_token = tokens[b][-1]
            results[capture] = [t[:12] for t in tokens]
        assert results[True] == results[False]


class TestSlicing:
    def scenario(self, pretrained_state, corpus, capture):
        """Decode, slice the live model, decode again on the same engine."""
        model = clone(pretrained_state)
        engine = GenerationEngine(model)
        with graph_capture(capture):
            before = greedy(engine, prefill_entries(engine), 6)
            rotate_and_slice(model, calib_ids(corpus), 0.5)
            after = greedy(engine, prefill_entries(engine), 6)
        return before, after

    def test_sliced_tokens_identical(self, pretrained_state, adapt_corpus):
        captured = self.scenario(pretrained_state, adapt_corpus, True)
        direct = self.scenario(pretrained_state, adapt_corpus, False)
        assert captured == direct

    def test_slice_invalidates_cached_graphs(self, pretrained_state, adapt_corpus):
        """Slicing swaps parameter objects; every pre-slice decode graph
        must fail its identity guard and be re-captured, never replayed."""
        reg = MetricsRegistry()
        with use_registry(reg):
            self.scenario(pretrained_state, adapt_corpus, True)
        assert reg.counter("tensor/graph/invalidations").value >= 1
        assert reg.counter("tensor/graph/captures").value >= 2
