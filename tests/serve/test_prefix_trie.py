"""Fuzz/invariant suite for the prefix trie and the prefix-sharing pool.

The trie is exercised two ways:

* **Model-based fuzz**: random interleavings of insert/lease/release/
  evict are mirrored against a brute-force oracle (a set of stored
  token sequences plus a multiset of outstanding leases).  After every
  op the trie's resident tokens, refcounts and stored prefixes must
  match the oracle exactly — catching double frees, refcount drift and
  lost segments.
* **Position-stamped KV integrity**: cache entries are synthesized as a
  deterministic function of (layer, position, token), so any leased
  arrays can be checked value-for-value no matter how nodes were split,
  merged or evicted along the way.
"""

import numpy as np
import pytest

from repro.obs import use_registry
from repro.serve.cache_pool import CachePool, PrefixTrie

LAYERS = 2
HEADS = 2
HEAD_DIM = 4


def stamped_kv(tokens, num_layers=LAYERS):
    """Per-layer arrays whose every entry encodes (layer, position, token).

    Value at ``[0, h, p, d] = layer * 10_000 + p * 100 + token`` — unique
    per position, so sliced/split/concatenated segments stay checkable.
    """
    seq = len(tokens)
    ks, vs = [], []
    for layer in range(num_layers):
        base = np.array(
            [layer * 10_000 + p * 100 + tokens[p] for p in range(seq)],
            dtype=np.float32,
        )
        k = np.broadcast_to(
            base[None, None, :, None], (1, HEADS, seq, HEAD_DIM)
        ).copy()
        ks.append(k)
        vs.append(k + 0.5)
    return ks, vs


def check_leased(tokens, length, k_list, v_list):
    """Leased arrays must cover positions [0, length) with exact stamps."""
    expect_k, expect_v = stamped_kv(list(tokens[:length]))
    for layer in range(LAYERS):
        np.testing.assert_array_equal(
            k_list[layer][:, :, :length, :], expect_k[layer]
        )
        np.testing.assert_array_equal(
            v_list[layer][:, :, :length, :], expect_v[layer]
        )


class Oracle:
    """Brute-force reference: stored sequences + outstanding leases."""

    def __init__(self):
        self.stored = set()  # every stored prefix, one entry per token run
        self.leases = []  # outstanding leased prefixes (tuples)

    def unique_tokens(self):
        """Deduplicated token count: the union of stored prefixes is a
        prefix-closed set, so unique tokens = number of distinct
        non-empty prefixes of stored sequences."""
        prefixes = set()
        for seq in self.stored:
            for i in range(1, len(seq) + 1):
                prefixes.add(seq[:i])
        return len(prefixes)

    def match(self, tokens):
        tokens = tuple(tokens)
        best = 0
        prefixes = set()
        for seq in self.stored:
            for i in range(1, len(seq) + 1):
                prefixes.add(seq[:i])
        for i in range(1, len(tokens) + 1):
            if tokens[:i] in prefixes:
                best = i
        return best

    def pinned_prefixes(self):
        """Set of prefixes pinned by some outstanding lease (every
        ancestor of a leased path is pinned)."""
        pinned = set()
        for lease in self.leases:
            for i in range(1, len(lease) + 1):
                pinned.add(lease[:i])
        return pinned


class TestTrieBasics:
    def test_insert_then_match(self):
        trie = PrefixTrie(LAYERS)
        tokens = (1, 2, 3, 4)
        trie.insert(tokens, *stamped_kv(list(tokens)))
        assert trie.match(tokens) == 4
        assert trie.match((1, 2, 9)) == 2
        assert trie.match((9,)) == 0
        assert trie.resident_tokens() == 4

    def test_insert_suffix_extends_not_duplicates(self):
        trie = PrefixTrie(LAYERS)
        trie.insert((1, 2), *stamped_kv([1, 2]))
        added = trie.insert((1, 2, 3, 4), *stamped_kv([1, 2, 3, 4]))
        assert added == 2
        assert trie.resident_tokens() == 4

    def test_divergent_insert_splits_node(self):
        trie = PrefixTrie(LAYERS)
        trie.insert((1, 2, 3), *stamped_kv([1, 2, 3]))
        trie.insert((1, 2, 9), *stamped_kv([1, 2, 9]))
        assert trie.resident_tokens() == 4  # 1,2 shared; 3 and 9 diverge
        assert trie.match((1, 2, 3)) == 3
        assert trie.match((1, 2, 9)) == 3

    def test_lease_returns_stamped_arrays(self):
        trie = PrefixTrie(LAYERS)
        tokens = (5, 6, 7, 8, 9)
        trie.insert(tokens, *stamped_kv(list(tokens)))
        length, ks, vs = trie.lease(tokens)
        assert length == 5
        check_leased(tokens, length, ks, vs)
        trie.release(tokens, length)

    def test_lease_mid_node_splits_and_stamps(self):
        trie = PrefixTrie(LAYERS)
        tokens = (5, 6, 7, 8)
        trie.insert(tokens, *stamped_kv(list(tokens)))
        length, ks, vs = trie.lease(tokens, max_tokens=2)
        assert length == 2
        check_leased(tokens, 2, ks, vs)
        # Split must not lose the tail.
        assert trie.match(tokens) == 4
        trie.release(tokens, 2)

    def test_release_unknown_path_raises(self):
        trie = PrefixTrie(LAYERS)
        trie.insert((1, 2), *stamped_kv([1, 2]))
        with pytest.raises(KeyError):
            trie.release((9, 9), 2)

    def test_double_release_raises(self):
        trie = PrefixTrie(LAYERS)
        tokens = (1, 2, 3)
        trie.insert(tokens, *stamped_kv(list(tokens)))
        length, _, _ = trie.lease(tokens)
        trie.release(tokens, length)
        with pytest.raises(RuntimeError, match="double release"):
            trie.release(tokens, length)

    def test_evict_spares_pinned(self):
        trie = PrefixTrie(LAYERS)
        a, b = (1, 2, 3), (7, 8)
        trie.insert(a, *stamped_kv(list(a)))
        trie.insert(b, *stamped_kv(list(b)))
        length, _, _ = trie.lease(a)
        with use_registry():
            freed = trie.evict(100)
        assert freed == 2  # only the unpinned (7, 8)
        assert trie.match(a) == 3
        assert trie.match(b) == 0
        trie.release(a, length)

    def test_evict_is_lru_leaf_up(self):
        trie = PrefixTrie(LAYERS)
        old, new = (1, 2), (3, 4)
        trie.insert(old, *stamped_kv(list(old)))
        trie.insert(new, *stamped_kv(list(new)))
        # Touch `old` so `new` becomes the LRU victim.
        length, _, _ = trie.lease(old)
        trie.release(old, length)
        with use_registry():
            trie.evict(2)
        assert trie.match(old) == 2
        assert trie.match(new) == 0


class TestTrieFuzz:
    """Random op interleavings checked against the brute-force oracle."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_interleavings_match_oracle(self, seed):
        rng = np.random.default_rng(seed)
        trie = PrefixTrie(LAYERS)
        oracle = Oracle()
        # Small alphabet + short sequences force heavy prefix overlap,
        # node splits and mid-span leases.
        def random_tokens():
            return tuple(
                int(t) for t in rng.integers(0, 3, size=int(rng.integers(1, 7)))
            )

        outstanding = []  # (tokens, length) mirror of oracle.leases
        with use_registry():
            for _ in range(300):
                op = rng.choice(["insert", "lease", "release", "evict"])
                if op == "insert":
                    tokens = random_tokens()
                    added = trie.insert(tokens, *stamped_kv(list(tokens)))
                    before = oracle.unique_tokens()
                    oracle.stored.add(tokens)
                    assert added == oracle.unique_tokens() - before
                elif op == "lease":
                    tokens = random_tokens()
                    cap = (
                        int(rng.integers(0, len(tokens) + 1))
                        if rng.random() < 0.5 else None
                    )
                    length, ks, vs = trie.lease(tokens, max_tokens=cap)
                    expect = oracle.match(tokens)
                    if cap is not None:
                        expect = min(expect, cap)
                    assert length == expect
                    if length:
                        check_leased(tokens, length, ks, vs)
                        outstanding.append((tokens, length))
                        oracle.leases.append(tokens[:length])
                elif op == "release" and outstanding:
                    i = int(rng.integers(0, len(outstanding)))
                    tokens, length = outstanding.pop(i)
                    oracle.leases.remove(tokens[:length])
                    trie.release(tokens, length)
                elif op == "evict":
                    freed = trie.evict(int(rng.integers(1, 6)))
                    # Whatever was evicted must not include pinned paths;
                    # rebuild the oracle's stored set from survivors.
                    if freed:
                        survivors = set()
                        for seq in oracle.stored:
                            kept = trie.match(seq)
                            if kept:
                                survivors.add(seq[:kept])
                        oracle.stored = survivors

                # -- invariants, every op --------------------------------
                assert trie.resident_tokens() == oracle.unique_tokens()
                pinned = oracle.pinned_prefixes()
                assert trie.pinned_tokens() == len(pinned)
                # Every pinned path must still be stored (never evicted).
                for prefix in pinned:
                    assert trie.match(prefix) == len(prefix)
                # debug_state refcounts: each node's refcount equals the
                # number of outstanding leases whose path covers it.
                for path, span, refcount in trie.debug_state():
                    covering = sum(
                        1 for lease in oracle.leases
                        if lease[: len(path)] == path
                    )
                    assert refcount == covering, (path, span)

            # Drain every lease: refcounts must hit zero exactly then.
            for tokens, length in outstanding:
                trie.release(tokens, length)
            assert trie.pinned_tokens() == 0
            assert all(rc == 0 for _, _, rc in trie.debug_state())
            # Now everything is evictable.
            trie.evict(10_000)
            assert trie.resident_tokens() == 0


class TestPoolSharingFuzz:
    """CachePool-level invariants under random admit/commit/release."""

    @pytest.mark.parametrize("seed", range(4))
    def test_occupancy_reflects_unique_blocks(self, seed):
        rng = np.random.default_rng(100 + seed)
        with use_registry():
            pool = CachePool(LAYERS, 10_000, share_prefixes=True)
            live = {}  # request_id -> prompt
            counter = 0
            for _ in range(120):
                op = rng.choice(["admit", "commit", "promote", "release"])
                if op == "admit":
                    counter += 1
                    rid = f"r{counter}"
                    prompt = [
                        int(t)
                        for t in rng.integers(0, 3, size=int(rng.integers(2, 8)))
                    ]
                    block, cached = pool.allocate_shared(rid, prompt, 64)
                    assert block[0].length == cached <= len(prompt) - 1
                    # Simulate prefill of the uncached suffix.
                    ks, vs = stamped_kv(prompt)
                    for layer in range(LAYERS):
                        block[layer].append(
                            ks[layer][:, :, cached:, :],
                            vs[layer][:, :, cached:, :],
                        )
                    live[rid] = prompt
                elif op == "commit" and live:
                    rid = sorted(live)[int(rng.integers(0, len(live)))]
                    prompt = live[rid]
                    pool.commit_prefix(rid, prompt)
                    # Post-commit content must be byte-identical.
                    block = pool._leases[rid].block
                    check_leased(
                        prompt, len(prompt),
                        [c.k for c in block], [c.v for c in block],
                    )
                elif op == "promote" and live:
                    rid = sorted(live)[int(rng.integers(0, len(live)))]
                    pool.promote_and_release(rid, live.pop(rid))
                elif op == "release" and live:
                    rid = sorted(live)[int(rng.integers(0, len(live)))]
                    del live[rid]
                    pool.release(rid)

                # Occupancy accounting: resident tokens equal the sum of
                # live unique blocks — private tails once per request,
                # trie segments once each.
                private = sum(
                    lease.block[0].tail_length
                    for lease in pool._leases.values()
                )
                assert pool.resident_tokens() == (
                    private + pool.trie.resident_tokens()
                )
                assert pool.trie.pinned_tokens() <= pool.trie.resident_tokens()
                assert 0.0 <= pool.occupancy()

            for rid in list(live):
                pool.release(rid)
            assert pool.reserved_tokens == 0
            assert pool.trie.pinned_tokens() == 0

    def test_cow_never_mutates_shared_block(self):
        with use_registry():
            pool = CachePool(LAYERS, 1_000, share_prefixes=True)
            prompt = [1, 2, 3, 4, 5]
            block, cached = pool.allocate_shared("a", prompt, 32)
            assert cached == 0
            ks, vs = stamped_kv(prompt)
            for layer in range(LAYERS):
                block[layer].append(ks[layer], vs[layer])
            pool.commit_prefix("a", prompt)

            other, cached_b = pool.allocate_shared("b", prompt, 32)
            assert cached_b == len(prompt) - 1
            # "b" rolls back into its shared prefix (speculative-style):
            # copy-on-write, so "a" and the trie still see exact stamps.
            other[0].truncate(2)
            assert other[0].detached
            check_leased(
                prompt, len(prompt),
                [c.k for c in block], [c.v for c in block],
            )
            length, trie_k, trie_v = pool.trie.lease(prompt)
            check_leased(prompt, length, trie_k, trie_v)
            pool.trie.release(prompt[:length], length)
            pool.release("a")
            pool.release("b")

    def test_eviction_makes_room_for_admission(self):
        with use_registry():
            pool = CachePool(LAYERS, 20, share_prefixes=True)
            prompt = [1, 2, 3, 4, 5, 6, 7, 8]
            block, _ = pool.allocate_shared("a", prompt, 10)
            ks, vs = stamped_kv(prompt)
            for layer in range(LAYERS):
                block[layer].append(ks[layer], vs[layer])
            pool.commit_prefix("a", prompt)
            pool.release("a")
            # Trie holds 8 unpinned tokens; a 20-token reservation still
            # fits because unpinned segments are evicted on demand.
            assert pool.can_reserve(20)
            pool.allocate("b", 20)
            assert pool.trie.resident_tokens() == 0
            pool.release("b")
