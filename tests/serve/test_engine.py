"""Tests for the generation engine: prefill/decode parity and early exit.

The load-bearing property throughout is the determinism contract: the
stacked batched decode path must produce exactly the tokens the direct
(batch-1) path produces, which in turn must match ``model.generate``.
"""

import numpy as np
import pytest

from repro.adaptive import ExitHeadSet, VotingCombiner
from repro.data import lm_batches
from repro.nn.attention import KVCache
from repro.obs import use_registry
from repro.serve import GenerationEngine, Request, serve_batch

PROMPTS = [[1, 2, 3], [7, 1], [4, 4, 9, 2], [30, 0, 5]]


def requests(n=4, max_new=6, **kw):
    return [
        Request(f"r{i}", prompt=PROMPTS[i % len(PROMPTS)],
                max_new_tokens=max_new, **kw)
        for i in range(n)
    ]


@pytest.fixture
def voting(pretrained_model, pretrain_corpus):
    heads = ExitHeadSet(pretrained_model, exit_points=[2, 4])
    combiner = VotingCombiner(pretrained_model, heads)
    rng = np.random.default_rng(0)
    inputs, targets = next(lm_batches(pretrain_corpus, 4, 24, 1, rng))
    combiner.calibrate(inputs, targets)
    return combiner


class TestConstruction:
    def test_threshold_requires_voting(self, pretrained_model):
        with pytest.raises(ValueError, match="requires a voting"):
            GenerationEngine(pretrained_model, confidence_threshold=0.5)

    def test_threshold_range(self, pretrained_model, voting):
        with pytest.raises(ValueError, match="in \\(0, 1\\]"):
            GenerationEngine(pretrained_model, voting=voting,
                             confidence_threshold=1.5)

    def test_uncalibrated_voting_rejected(self, pretrained_model):
        heads = ExitHeadSet(pretrained_model, exit_points=[2])
        raw = VotingCombiner(pretrained_model, heads)
        with pytest.raises(ValueError, match="calibrate"):
            GenerationEngine(pretrained_model, voting=raw)

    def test_foreign_model_rejected(self, pretrained_model, voting):
        from repro.nn import TransformerLM

        other = TransformerLM(pretrained_model.config)
        with pytest.raises(ValueError, match="different model"):
            GenerationEngine(other, voting=voting)

    def test_puts_model_in_eval(self, pretrained_model):
        pretrained_model.train(True)
        GenerationEngine(pretrained_model)
        assert not pretrained_model.training


class TestPrefill:
    def test_matches_full_forward(self, pretrained_model):
        engine = GenerationEngine(pretrained_model)
        caches = pretrained_model.new_caches()
        logits = engine.prefill([1, 2, 3, 4], caches)
        ids = np.array([[1, 2, 3, 4]], dtype=np.int64)
        full = pretrained_model(ids).data[0, -1]
        np.testing.assert_allclose(logits, full, atol=1e-5)

    def test_fills_every_layer(self, pretrained_model):
        engine = GenerationEngine(pretrained_model)
        caches = pretrained_model.new_caches()
        engine.prefill([1, 2, 3], caches)
        assert all(c.length == 3 for c in caches)

    def test_empty_decode_raises(self, pretrained_model):
        engine = GenerationEngine(pretrained_model)
        with pytest.raises(ValueError):
            engine.decode_step([])


class TestPlainDeterminism:
    def test_batched_matches_sequential_and_generate(self, pretrained_model):
        reqs = requests()
        batched = serve_batch(pretrained_model, reqs, max_batch_size=4)
        sequential = serve_batch(pretrained_model, reqs, max_batch_size=1)
        for req, b, s in zip(reqs, batched, sequential):
            reference = pretrained_model.generate(
                req.prompt, req.max_new_tokens, greedy=True
            )
            assert b.tokens == s.tokens == reference

    def test_sampled_tokens_independent_of_batching(self, pretrained_model):
        reqs = requests(greedy=False, temperature=0.8)
        for i, r in enumerate(reqs):
            r.seed = 100 + i
        batched = serve_batch(pretrained_model, reqs, max_batch_size=4)
        sequential = serve_batch(pretrained_model, reqs, max_batch_size=1)
        assert [b.tokens for b in batched] == [s.tokens for s in sequential]

    def test_ragged_cache_lengths_stay_exact(self, pretrained_model):
        # Different prompt lengths exercise the padded stacked cache.
        reqs = [
            Request("a", prompt=[1], max_new_tokens=8),
            Request("b", prompt=[2] * 10, max_new_tokens=8),
        ]
        batched = serve_batch(pretrained_model, reqs, max_batch_size=2)
        for req, res in zip(reqs, batched):
            assert res.tokens == pretrained_model.generate(
                req.prompt, req.max_new_tokens, greedy=True
            )


class TestVotingDecode:
    def test_batched_matches_sequential(self, pretrained_model, voting):
        reqs = requests()
        batched = serve_batch(pretrained_model, reqs, voting=voting,
                              max_batch_size=4)
        sequential = serve_batch(pretrained_model, reqs, voting=voting,
                                 max_batch_size=1)
        assert [b.tokens for b in batched] == [s.tokens for s in sequential]

    def test_early_exit_deterministic_across_batching(
        self, pretrained_model, voting
    ):
        reqs = requests()
        batched = serve_batch(
            pretrained_model, reqs, voting=voting,
            confidence_threshold=0.3, max_batch_size=4,
        )
        sequential = serve_batch(
            pretrained_model, reqs, voting=voting,
            confidence_threshold=0.3, max_batch_size=1,
        )
        assert [b.tokens for b in batched] == [s.tokens for s in sequential]
        assert [b.early_exit_tokens for b in batched] == [
            s.early_exit_tokens for s in sequential
        ]

    def test_early_exit_actually_triggers(self, pretrained_model, voting):
        # Threshold so low every token exits at the shallowest exit.
        with use_registry() as reg:
            results = serve_batch(
                pretrained_model, requests(), voting=voting,
                confidence_threshold=1e-6, max_batch_size=4,
            )
            assert all(
                r.early_exit_tokens == len(r.tokens) - 1 for r in results
            ), "every decode-step token should early-exit"
            assert reg.counter("serve/early_exit_tokens").value > 0

    def test_skipped_layers_still_get_cache_entries(
        self, pretrained_model, voting
    ):
        engine = GenerationEngine(
            pretrained_model, voting=voting, confidence_threshold=1e-6
        )
        caches = [KVCache() for _ in range(pretrained_model.num_layers)]
        logits = engine.prefill([1, 2, 3], caches)

        class Entry:
            pass

        e = Entry()
        e.caches = caches
        e.last_token = int(logits.argmax())
        for _ in range(3):
            logits, early = engine.decode_step([e])
            e.last_token = int(logits[0].argmax())
            assert bool(early[0])
        lengths = {c.length for c in caches}
        assert lengths == {6}, "early exit must not leave ragged caches"


class TestCounters:
    def test_prefill_and_decode_counts(self, pretrained_model):
        with use_registry() as reg:
            serve_batch(pretrained_model, requests(n=2, max_new=4),
                        max_batch_size=2)
            assert reg.counter("serve/prefills").value == 2
            assert reg.counter("serve/prefill_tokens").value == \
                len(PROMPTS[0]) + len(PROMPTS[1])
            # One token comes from prefill, three from decode steps.
            assert reg.counter("serve/decode_tokens").value == 6
