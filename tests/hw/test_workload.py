"""Tests for GEMM workload extraction."""

import pytest

from repro.hw import (
    GEMMWorkload,
    block_backward_gemms,
    block_forward_gemms,
    total_macs,
    tuning_iteration_workload,
)
from repro.nn import TransformerConfig

CFG = TransformerConfig(vocab_size=64, dim=64, num_layers=4, num_heads=4, max_len=128)


class TestGEMMWorkload:
    def test_macs(self):
        g = GEMMWorkload("t", 8, 16, 32)
        assert g.macs == 8 * 16 * 32

    def test_operand_bytes_respect_bits_and_sparsity(self):
        g = GEMMWorkload("t", 8, 16, 32, bits=4, sparsity=0.5)
        ops = g.operand_bytes()
        assert ops["a"] == 8 * 16 * 0.5          # 4-bit inputs
        assert ops["b"] == 16 * 32 * 0.5 * 0.5   # 4-bit, half pruned
        assert ops["c"] == 8 * 32 * 2            # fp16 outputs

    def test_degenerate_dims_raise(self):
        with pytest.raises(ValueError):
            GEMMWorkload("t", 0, 4, 4)

    def test_bad_sparsity_raises(self):
        with pytest.raises(ValueError):
            GEMMWorkload("t", 4, 4, 4, sparsity=1.0)


class TestBlockGEMMs:
    def test_forward_gemm_count(self):
        gemms = block_forward_gemms(CFG, batch=2, seq=16, block_index=0)
        assert len(gemms) == 9  # qkv, scores, context, o, gate, up, down

    def test_attention_macs_correct(self):
        """Scores MACs must equal B*H*T*T*head_dim = B*T*T*D."""
        gemms = block_forward_gemms(CFG, batch=2, seq=16, block_index=0)
        scores = next(g for g in gemms if "scores" in g.name)
        assert scores.macs == 2 * 16 * 16 * CFG.dim

    def test_compression_applies_to_weights_not_attention(self):
        gemms = block_forward_gemms(CFG, 2, 16, 0, bits=4, sparsity=0.5)
        by_name = {g.name.split(".")[-1]: g for g in gemms}
        assert by_name["q"].bits == 4
        assert by_name["scores"].bits == 16
        assert by_name["scores"].sparsity == 0.0

    def test_backward_doubles_gemms(self):
        fwd = block_forward_gemms(CFG, 2, 16, 0)
        bwd = block_backward_gemms(CFG, 2, 16, 0)
        assert len(bwd) == 2 * len(fwd)

    def test_backward_macs_roughly_double_forward(self):
        fwd = total_macs(block_forward_gemms(CFG, 2, 16, 0))
        bwd = total_macs(block_backward_gemms(CFG, 2, 16, 0))
        assert bwd == pytest.approx(2 * fwd, rel=0.01)

    def test_weight_grad_gemms_full_precision(self):
        bwd = block_backward_gemms(CFG, 2, 16, 0, bits=4, sparsity=0.5)
        db = [g for g in bwd if g.name.endswith(".dB")]
        assert all(g.bits == 16 and g.sparsity == 0.0 for g in db)


class TestIterationWorkload:
    def test_vanilla_iteration_covers_all_blocks(self):
        gemms = tuning_iteration_workload(CFG, 2, 16, forward_blocks=4, grad_start=0)
        block_names = {g.name.split(".")[0] for g in gemms}
        assert block_names == {"block0", "block1", "block2", "block3", "head"}

    def test_adaptive_iteration_truncates(self):
        gemms = tuning_iteration_workload(CFG, 2, 16, forward_blocks=3, grad_start=1)
        names = [g.name for g in gemms]
        assert not any(n.startswith("block3") for n in names)
        assert not any(n.startswith("block0") and n.endswith(".dB") for n in names)
        assert any(n.startswith("block1") and n.endswith(".dB") for n in names)

    def test_adaptive_cheaper_than_vanilla(self):
        vanilla = total_macs(
            tuning_iteration_workload(CFG, 2, 16, forward_blocks=4, grad_start=0)
        )
        adaptive = total_macs(
            tuning_iteration_workload(CFG, 2, 16, forward_blocks=2, grad_start=1)
        )
        assert adaptive < vanilla / 2

    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            tuning_iteration_workload(CFG, 2, 16, forward_blocks=5, grad_start=0)
        with pytest.raises(ValueError):
            tuning_iteration_workload(CFG, 2, 16, forward_blocks=2, grad_start=3)

    def test_per_block_compression_dicts(self):
        gemms = tuning_iteration_workload(
            CFG, 2, 16, 2, 0,
            bits_per_block={0: 4},
            sparsity_per_block={0: 0.5},
        )
        b0_q = next(g for g in gemms if g.name == "block0.q")
        b1_q = next(g for g in gemms if g.name == "block1.q")
        assert b0_q.bits == 4 and b0_q.sparsity == 0.5
        assert b1_q.bits == 16 and b1_q.sparsity == 0.0
