"""Sliced junction widths must genuinely shrink the modeled GEMMs."""

import pytest

from repro.hw import (
    block_backward_gemms,
    block_forward_gemms,
    decode_step_workload,
    head_gemm,
    prefill_workload,
    total_macs,
    tuning_iteration_workload,
)
from repro.nn import TransformerConfig

CFG = TransformerConfig(
    vocab_size=64, dim=64, num_layers=4, num_heads=4, max_len=64
)
HALF = (32, 32, 32)
SLICED = {i: HALF for i in range(CFG.num_layers)}


def _by_name(gemms):
    return {g.name: g for g in gemms}


class TestBlockGemms:
    def test_forward_shapes_follow_slice_dims(self):
        gemms = _by_name(block_forward_gemms(CFG, 2, 8, 0, slice_dims=(16, 24, 32)))
        assert gemms["block0.q"].k == 16
        assert gemms["block0.k"].k == 16
        assert gemms["block0.o"].n == 24
        assert gemms["block0.gate"].k == 24
        assert gemms["block0.up"].k == 24
        assert gemms["block0.down"].n == 32
        # Attention internals keep full width.
        assert gemms["block0.scores"].k == CFG.dim
        assert gemms["block0.context"].n == CFG.dim
        assert gemms["block0.q"].n == CFG.dim

    def test_default_matches_unsliced(self):
        assert block_forward_gemms(CFG, 2, 8, 0) == block_forward_gemms(
            CFG, 2, 8, 0, slice_dims=None
        )

    def test_backward_inherits_sliced_shapes(self):
        fwd = total_macs(block_forward_gemms(CFG, 2, 8, 0, slice_dims=HALF))
        bwd = total_macs(block_backward_gemms(CFG, 2, 8, 0, slice_dims=HALF))
        assert bwd == 2 * fwd

    def test_head_in_dim_override(self):
        assert head_gemm(CFG, 16).k == CFG.dim
        assert head_gemm(CFG, 16, in_dim=32).k == 32


class TestWorkloads:
    def test_tuning_iteration_macs_shrink(self):
        base = total_macs(tuning_iteration_workload(CFG, 2, 8, 4, 2))
        sliced = total_macs(
            tuning_iteration_workload(CFG, 2, 8, 4, 2, slice_per_block=SLICED)
        )
        assert sliced < base

    def test_head_reads_last_executed_block_width(self):
        gemms = tuning_iteration_workload(
            CFG, 2, 8, 4, 2, slice_per_block=SLICED
        )
        heads = [g for g in gemms if g.name == "head"]
        assert len(heads) == 2
        assert all(h.k == 32 for h in heads)
        # Unsliced: full width.
        plain = [
            g for g in tuning_iteration_workload(CFG, 2, 8, 4, 2)
            if g.name == "head"
        ]
        assert all(h.k == CFG.dim for h in plain)

    def test_prefill_and_decode_shrink_consistently(self):
        for build in (
            lambda s: prefill_workload(CFG, 2, 16, slice_per_block=s),
            lambda s: decode_step_workload(CFG, 2, 16, slice_per_block=s),
        ):
            base = total_macs(build(None))
            sliced = total_macs(build(SLICED))
            assert sliced < base
            ratio = base / sliced
            # Projections halve, attention internals don't: the overall
            # reduction lands strictly between 1x and 2x.
            assert 1.3 < ratio < 2.0

    def test_decode_matches_forward_reduction_structure(self):
        gemms = _by_name(decode_step_workload(CFG, 2, 16, slice_per_block=SLICED))
        assert gemms["block0.q"].k == 32
        assert gemms["block0.down"].n == 32
        assert gemms["block0.scores"].k == CFG.dim
        assert gemms["head"].k == 32

    def test_degenerate_dims_rejected(self):
        with pytest.raises(ValueError):
            block_forward_gemms(CFG, 2, 8, 0, slice_dims=(0, 32, 32))
