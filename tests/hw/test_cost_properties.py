"""Property-based invariants of the hardware cost model."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.hw import (
    AcceleratorSpec,
    GEMMWorkload,
    Schedule,
    enumerate_schedules,
    gemm_cost,
    heuristic_schedule,
)

ACC = AcceleratorSpec()

dims = st.integers(8, 512)
bits_st = st.sampled_from([2, 4, 8, 16])
tile = st.sampled_from([8, 16, 32, 64])
dataflow = st.sampled_from(
    ["weight_stationary", "output_stationary", "input_stationary"]
)


@settings(max_examples=40, deadline=None)
@given(m=dims, k=dims, n=dims, bits=bits_st,
       sparsity=st.floats(0.0, 0.9),
       tm=tile, tn=tile, tk=tile, df=dataflow, db=st.booleans())
def test_cost_report_invariants(m, k, n, bits, sparsity, tm, tn, tk, df, db):
    workload = GEMMWorkload("g", m, k, n, bits=bits, sparsity=sparsity)
    schedule = Schedule(tm, tn, tk, df, db)
    assume(schedule.fits(ACC, bits))
    report = gemm_cost(workload, schedule, ACC)
    assert report.cycles > 0
    assert report.compute_cycles > 0
    assert report.dram_bytes > 0
    assert report.energy_pj > 0
    assert 0.0 < report.utilization <= 1.0
    if db:
        assert report.cycles == max(report.compute_cycles, report.dram_cycles)
    else:
        assert report.cycles == report.compute_cycles + report.dram_cycles


@settings(max_examples=25, deadline=None)
@given(m=dims, k=dims, n=dims, tm=tile, tn=tile, tk=tile, df=dataflow)
def test_more_bits_never_cheaper_compute(m, k, n, tm, tn, tk, df):
    schedule = Schedule(tm, tn, tk, df, True)
    costs = []
    for bits in (2, 4, 8, 16):
        workload = GEMMWorkload("g", m, k, n, bits=bits)
        assume(schedule.fits(ACC, bits))
        costs.append(gemm_cost(workload, schedule, ACC).compute_cycles)
    assert all(a <= b + 1e-9 for a, b in zip(costs, costs[1:]))


@settings(max_examples=25, deadline=None)
@given(m=dims, k=dims, n=dims, tm=tile, tn=tile, tk=tile)
def test_sparsity_monotone(m, k, n, tm, tn, tk):
    schedule = Schedule(tm, tn, tk, "weight_stationary", True)
    assume(schedule.fits(ACC, 8))
    prev = np.inf
    for sparsity in (0.0, 0.3, 0.6, 0.9):
        workload = GEMMWorkload("g", m, k, n, bits=8, sparsity=sparsity)
        cycles = gemm_cost(workload, schedule, ACC).compute_cycles
        assert cycles <= prev + 1e-9
        prev = cycles


@settings(max_examples=20, deadline=None)
@given(m=dims, k=dims, n=dims, bits=bits_st)
def test_heuristic_always_feasible(m, k, n, bits):
    workload = GEMMWorkload("g", m, k, n, bits=bits)
    schedule = heuristic_schedule(workload, ACC)
    assert schedule.fits(ACC, bits)
    report = gemm_cost(workload, schedule, ACC)
    assert report.cycles > 0


@settings(max_examples=10, deadline=None)
@given(m=st.integers(8, 128), k=st.integers(8, 128), n=st.integers(8, 128))
def test_enumeration_contains_only_feasible(m, k, n):
    workload = GEMMWorkload("g", m, k, n, bits=8)
    tiny = AcceleratorSpec(sram_bytes=8 * 1024)
    schedules = list(enumerate_schedules(workload, tiny))
    assert schedules, "at least one schedule must fit"
    assert all(s.fits(tiny, 8) for s in schedules)


@settings(max_examples=15, deadline=None)
@given(m=dims, k=dims, n=dims, scale=st.integers(2, 4))
def test_compute_scales_with_work(m, k, n, scale):
    """Scaling M multiplies ideal compute proportionally."""
    schedule = Schedule(16, 16, 64, "weight_stationary", True)
    small = GEMMWorkload("g", m, k, n, bits=8)
    big = GEMMWorkload("g", m * scale, k, n, bits=8)
    assume(schedule.fits(ACC, 8))
    c_small = gemm_cost(small, schedule, ACC).compute_cycles
    c_big = gemm_cost(big, schedule, ACC).compute_cycles
    ratio = c_big / c_small
    # Tiling ceil effects allow slack but the trend must hold.
    assert scale * 0.5 <= ratio <= scale * 2.0
