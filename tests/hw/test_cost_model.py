"""Tests for the accelerator spec, schedules and the analytical cost model."""

import math

import pytest

from repro.hw import (
    AcceleratorSpec,
    GEMMWorkload,
    Schedule,
    enumerate_schedules,
    gemm_cost,
    heuristic_schedule,
    objective_value,
)

ACC = AcceleratorSpec()
G = GEMMWorkload("g", 256, 128, 128, bits=8)


class TestAcceleratorSpec:
    def test_macs_per_cycle(self):
        assert ACC.macs_per_cycle == 256

    def test_bit_cycles_scaling(self):
        assert ACC.bit_cycles(16) == 2.0
        assert ACC.bit_cycles(4) == 0.5

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            AcceleratorSpec(pe_rows=0)
        with pytest.raises(ValueError):
            AcceleratorSpec(sparse_efficiency=2.0)
        with pytest.raises(ValueError):
            AcceleratorSpec(sram_bytes=0)


class TestSchedule:
    def test_tile_bytes(self):
        s = Schedule(16, 16, 64, double_buffer=False)
        expected = 16 * 64 + 64 * 16 + 16 * 16 * 4  # 8-bit A/B, 32-bit C
        assert s.tile_sram_bytes(bits=8) == expected

    def test_double_buffer_doubles(self):
        single = Schedule(16, 16, 64, double_buffer=False).tile_sram_bytes(8)
        double = Schedule(16, 16, 64, double_buffer=True).tile_sram_bytes(8)
        assert double == 2 * single

    def test_fits(self):
        tiny = AcceleratorSpec(sram_bytes=1024)
        assert Schedule(8, 8, 8, double_buffer=False).fits(tiny, 8)
        assert not Schedule(256, 256, 256).fits(tiny, 8)

    def test_invalid_schedule(self):
        with pytest.raises(ValueError):
            Schedule(0, 8, 8)
        with pytest.raises(ValueError):
            Schedule(8, 8, 8, dataflow="bogus")

    def test_enumeration_only_feasible(self):
        tiny = AcceleratorSpec(sram_bytes=4096)
        for s in enumerate_schedules(G, tiny):
            assert s.fits(tiny, G.bits)

    def test_heuristic_always_fits(self):
        tiny = AcceleratorSpec(sram_bytes=2048)
        s = heuristic_schedule(G, tiny)
        assert s.fits(tiny, G.bits)


class TestGemmCost:
    def schedule(self, **kw):
        defaults = dict(tile_m=16, tile_n=16, tile_k=64,
                        dataflow="weight_stationary", double_buffer=True)
        defaults.update(kw)
        return Schedule(**defaults)

    def test_compute_cycles_formula(self):
        s = self.schedule()
        report = gemm_cost(G, s, ACC)
        tiles = math.ceil(256 / 16) * math.ceil(128 / 16) * math.ceil(128 / 64)
        assert report.compute_cycles == pytest.approx(tiles * 64 * 1.0)

    def test_infeasible_schedule_raises(self):
        tiny = AcceleratorSpec(sram_bytes=256)
        with pytest.raises(ValueError):
            gemm_cost(G, self.schedule(), tiny)

    def test_lower_bits_fewer_cycles(self):
        s = self.schedule()
        c16 = gemm_cost(GEMMWorkload("g", 256, 128, 128, bits=16), s, ACC)
        c4 = gemm_cost(GEMMWorkload("g", 256, 128, 128, bits=4), s, ACC)
        assert c4.compute_cycles < c16.compute_cycles / 2

    def test_sparsity_reduces_compute(self):
        s = self.schedule()
        dense = gemm_cost(GEMMWorkload("g", 256, 128, 128, sparsity=0.0), s, ACC)
        sparse = gemm_cost(GEMMWorkload("g", 256, 128, 128, sparsity=0.5), s, ACC)
        keep = 1 - 0.5 * ACC.sparse_efficiency
        assert sparse.compute_cycles == pytest.approx(dense.compute_cycles * keep)

    def test_double_buffer_overlaps(self):
        overlapped = gemm_cost(G, self.schedule(double_buffer=True), ACC)
        serial_schedule = self.schedule(double_buffer=False)
        serial = gemm_cost(G, serial_schedule, ACC)
        assert overlapped.cycles == pytest.approx(
            max(overlapped.compute_cycles, overlapped.dram_cycles)
        )
        assert serial.cycles == pytest.approx(
            serial.compute_cycles + serial.dram_cycles
        )

    def test_small_tiles_underutilize(self):
        good = gemm_cost(G, self.schedule(tile_m=16, tile_n=16), ACC)
        bad = gemm_cost(G, self.schedule(tile_m=8, tile_n=8), ACC)
        assert bad.utilization < good.utilization

    def test_utilization_bounded(self):
        for s in [self.schedule(), self.schedule(tile_m=8)]:
            r = gemm_cost(G, s, ACC)
            assert 0.0 < r.utilization <= 1.0

    def test_output_stationary_writes_c_once(self):
        ws = gemm_cost(G, self.schedule(dataflow="weight_stationary", tile_k=16), ACC)
        os = gemm_cost(G, self.schedule(dataflow="output_stationary", tile_k=16), ACC)
        # With many K tiles, weight-stationary re-spills partial sums.
        assert os.dram_bytes < ws.dram_bytes

    def test_energy_positive_and_monotone_in_bits(self):
        s = self.schedule()
        e4 = gemm_cost(GEMMWorkload("g", 256, 128, 128, bits=4), s, ACC).energy_pj
        e16 = gemm_cost(GEMMWorkload("g", 256, 128, 128, bits=16), s, ACC).energy_pj
        assert 0 < e4 < e16

    def test_latency_seconds(self):
        r = gemm_cost(G, self.schedule(), ACC)
        assert r.latency_seconds(ACC) == pytest.approx(r.cycles / ACC.frequency_hz)

    def test_objective_values(self):
        r = gemm_cost(G, self.schedule(), ACC)
        assert objective_value(r, "latency") == r.cycles
        assert objective_value(r, "energy") == r.energy_pj
        assert objective_value(r, "edp") == r.cycles * r.energy_pj
        with pytest.raises(ValueError):
            objective_value(r, "bogus")
