"""Tests for memory-bound elementwise op costing."""

import pytest

from repro.hw import (
    AcceleratorSpec,
    EDGE_GPU_LIKE,
    ElementwiseWorkload,
    block_elementwise_workloads,
    elementwise_cycles,
    iteration_elementwise_cycles,
    schedule_workloads,
    tuning_iteration_workload,
)
from repro.nn import TransformerConfig

CFG = TransformerConfig(vocab_size=64, dim=64, num_layers=8, num_heads=4,
                        max_len=128)


class TestElementwiseWorkload:
    def test_cycles_bandwidth_bound(self):
        w = ElementwiseWorkload("x", bytes_moved=1600.0)
        accel = AcceleratorSpec(dram_bytes_per_cycle=16.0)
        assert elementwise_cycles(w, accel) == pytest.approx(100.0)

    def test_invalid_traffic(self):
        with pytest.raises(ValueError):
            ElementwiseWorkload("x", bytes_moved=0.0)

    def test_halving_bandwidth_doubles_cycles(self):
        w = ElementwiseWorkload("x", bytes_moved=1000.0)
        fast = AcceleratorSpec(dram_bytes_per_cycle=16.0)
        slow = AcceleratorSpec(dram_bytes_per_cycle=8.0)
        assert elementwise_cycles(w, slow) == pytest.approx(
            2 * elementwise_cycles(w, fast)
        )


class TestBlockWorkloads:
    def test_four_op_groups(self):
        ws = block_elementwise_workloads(CFG, 4, 32, 0)
        names = {w.name.split(".")[-1] for w in ws}
        assert names == {"norms", "softmax", "swiglu", "residuals"}

    def test_backward_heavier(self):
        fwd = sum(w.bytes_moved for w in block_elementwise_workloads(CFG, 4, 32, 0))
        bwd = sum(
            w.bytes_moved
            for w in block_elementwise_workloads(CFG, 4, 32, 0, backward=True)
        )
        assert bwd > fwd

    def test_softmax_quadratic_in_seq(self):
        def softmax_bytes(seq):
            ws = block_elementwise_workloads(CFG, 1, seq, 0)
            return next(w for w in ws if "softmax" in w.name).bytes_moved

        assert softmax_bytes(64) == pytest.approx(4 * softmax_bytes(32))


class TestIterationCycles:
    def test_scales_with_blocks(self):
        short = iteration_elementwise_cycles(CFG, EDGE_GPU_LIKE, 4, 32, 4, 2)
        full = iteration_elementwise_cycles(CFG, EDGE_GPU_LIKE, 4, 32, 8, 0)
        assert full > short

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            iteration_elementwise_cycles(CFG, EDGE_GPU_LIKE, 4, 32, 9, 0)

    def test_amdahl_effect(self):
        """Compression shrinks GEMM cycles but not the elementwise floor,
        so the end-to-end speedup is smaller than GEMM-only predicts."""
        dense_gemm = schedule_workloads(
            tuning_iteration_workload(CFG, 8, 32, 8, 0),
            EDGE_GPU_LIKE, strategy="heuristic",
        ).cycles
        comp_gemm = schedule_workloads(
            tuning_iteration_workload(
                CFG, 8, 32, 8, 0,
                bits_per_block={i: 2 for i in range(8)},
                sparsity_per_block={i: 0.5 for i in range(8)},
            ),
            EDGE_GPU_LIKE, strategy="heuristic",
        ).cycles
        ew = iteration_elementwise_cycles(CFG, EDGE_GPU_LIKE, 8, 32, 8, 0)
        gemm_only_speedup = dense_gemm / comp_gemm
        end_to_end_speedup = (dense_gemm + ew) / (comp_gemm + ew)
        assert end_to_end_speedup < gemm_only_speedup
        assert end_to_end_speedup > 1.0

    def test_elementwise_is_minor_but_nonzero_share(self):
        gemm = schedule_workloads(
            tuning_iteration_workload(CFG, 8, 32, 8, 0),
            EDGE_GPU_LIKE, strategy="heuristic",
        ).cycles
        ew = iteration_elementwise_cycles(CFG, EDGE_GPU_LIKE, 8, 32, 8, 0)
        share = ew / (gemm + ew)
        assert 0.005 < share < 0.5
