"""Tests for inference-phase workloads (prefill / decode / voting)."""

import pytest

from repro.hw import (
    EDGE_GPU_LIKE,
    decode_step_workload,
    generation_cost,
    prefill_workload,
    total_macs,
    voting_overhead_workload,
)
from repro.nn import TransformerConfig

CFG = TransformerConfig(vocab_size=64, dim=64, num_layers=4, num_heads=4,
                        max_len=256)


class TestPrefill:
    def test_covers_all_blocks_and_head(self):
        gemms = prefill_workload(CFG, batch=2, prompt_len=16)
        names = {g.name.split(".")[0] for g in gemms}
        assert names == {"block0", "block1", "block2", "block3", "head"}

    def test_compression_applied(self):
        gemms = prefill_workload(
            CFG, 2, 16, bits_per_block={0: 4}, sparsity_per_block={0: 0.5}
        )
        q0 = next(g for g in gemms if g.name == "block0.q")
        assert q0.bits == 4 and q0.sparsity == 0.5

    def test_scales_with_prompt(self):
        short = total_macs(prefill_workload(CFG, 1, 8))
        long = total_macs(prefill_workload(CFG, 1, 32))
        assert long > 3.9 * short  # superlinear due to attention


class TestDecodeStep:
    def test_single_token_projections(self):
        gemms = decode_step_workload(CFG, batch=2, context_len=10)
        q = next(g for g in gemms if g.name == "block0.q")
        assert q.m == 2  # one token per sequence

    def test_attention_scales_with_context(self):
        short = total_macs(decode_step_workload(CFG, 1, context_len=8))
        long = total_macs(decode_step_workload(CFG, 1, context_len=128))
        assert long > short

    def test_invalid_context(self):
        with pytest.raises(ValueError):
            decode_step_workload(CFG, 1, context_len=0)

    def test_decode_much_cheaper_than_prefill(self):
        prefill = total_macs(prefill_workload(CFG, 1, 64))
        step = total_macs(decode_step_workload(CFG, 1, 64))
        assert step < prefill / 16


class TestVotingOverhead:
    def test_one_gemm_per_intermediate_exit(self):
        gemms = voting_overhead_workload(CFG, 1, 16, exit_points=[1, 2, 4])
        # Exit 4 == final head, already computed.
        assert len(gemms) == 2
        assert all(g.n == CFG.vocab_size for g in gemms)

    def test_empty_when_only_final(self):
        assert voting_overhead_workload(CFG, 1, 16, [CFG.num_layers]) == []

    def test_overhead_small_vs_prefill(self):
        overhead = total_macs(voting_overhead_workload(CFG, 1, 16, [1, 2]))
        prefill = total_macs(prefill_workload(CFG, 1, 16))
        assert overhead < prefill * 0.2


class TestGenerationCost:
    def test_components_sum(self):
        cost = generation_cost(
            CFG, EDGE_GPU_LIKE, batch=1, prompt_len=8, new_tokens=4,
            exit_points=[1, 2], strategy="heuristic",
        )
        assert cost["total_cycles"] == pytest.approx(
            cost["prefill_cycles"] + cost["decode_cycles"] + cost["voting_cycles"]
        )

    def test_compression_reduces_cost(self):
        dense = generation_cost(
            CFG, EDGE_GPU_LIKE, 1, 8, 2, strategy="heuristic"
        )
        compressed = generation_cost(
            CFG, EDGE_GPU_LIKE, 1, 8, 2,
            bits_per_block={i: 4 for i in range(4)},
            sparsity_per_block={i: 0.5 for i in range(4)},
            strategy="heuristic",
        )
        assert compressed["total_cycles"] < dense["total_cycles"]

    def test_no_exits_no_voting_cost(self):
        cost = generation_cost(CFG, EDGE_GPU_LIKE, 1, 8, 1, strategy="heuristic")
        assert cost["voting_cycles"] == 0.0
