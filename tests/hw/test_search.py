"""Tests for schedule search strategies."""

import numpy as np
import pytest

from repro.hw import (
    AcceleratorSpec,
    GEMMWorkload,
    evolutionary_best,
    exhaustive_best,
    gemm_cost,
    heuristic_schedule,
    random_best,
    schedule_workloads,
    tuning_iteration_workload,
)
from repro.nn import TransformerConfig

ACC = AcceleratorSpec()
G = GEMMWorkload("g", 256, 128, 128, bits=8)
CFG = TransformerConfig(vocab_size=64, dim=64, num_layers=4, num_heads=4, max_len=128)


class TestSingleGEMMSearch:
    def test_exhaustive_beats_heuristic(self):
        best = exhaustive_best(G, ACC)
        heur = heuristic_schedule(G, ACC)
        assert gemm_cost(G, best, ACC).cycles <= gemm_cost(G, heur, ACC).cycles

    def test_exhaustive_is_optimal_over_random(self):
        best = exhaustive_best(G, ACC)
        rand = random_best(G, ACC, n_samples=30, seed=0)
        assert gemm_cost(G, best, ACC).cycles <= gemm_cost(G, rand, ACC).cycles

    def test_evolutionary_close_to_exhaustive(self):
        best = exhaustive_best(G, ACC)
        evo = evolutionary_best(G, ACC, seed=0)
        assert gemm_cost(G, evo, ACC).cycles <= gemm_cost(G, best, ACC).cycles * 2.0

    def test_energy_objective_changes_choice_cost(self):
        lat = exhaustive_best(G, ACC, objective="latency")
        eng = exhaustive_best(G, ACC, objective="energy")
        assert (
            gemm_cost(G, eng, ACC).energy_pj <= gemm_cost(G, lat, ACC).energy_pj
        )

    def test_random_deterministic_by_seed(self):
        a = random_best(G, ACC, seed=7)
        b = random_best(G, ACC, seed=7)
        assert a == b


class TestScheduleWorkloads:
    def gemms(self):
        return tuning_iteration_workload(CFG, 2, 16, forward_blocks=4, grad_start=0)

    def test_totals_are_sums(self):
        cost = schedule_workloads(self.gemms(), ACC, strategy="heuristic")
        assert cost.cycles == pytest.approx(
            sum(s.cost.cycles for s in cost.scheduled)
        )
        assert cost.energy_pj > 0
        assert cost.dram_bytes > 0

    def test_search_improves_over_heuristic(self):
        heur = schedule_workloads(self.gemms(), ACC, strategy="heuristic")
        best = schedule_workloads(self.gemms(), ACC, strategy="exhaustive")
        assert best.cycles < heur.cycles
        assert best.mean_utilization > heur.mean_utilization

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError):
            schedule_workloads(self.gemms(), ACC, strategy="bogus")

    def test_mean_utilization_bounded(self):
        cost = schedule_workloads(self.gemms(), ACC, strategy="exhaustive")
        assert 0.0 < cost.mean_utilization <= 1.0

    def test_latency_seconds(self):
        cost = schedule_workloads(self.gemms(), ACC, strategy="heuristic")
        assert cost.latency_seconds(ACC) == pytest.approx(
            cost.cycles / ACC.frequency_hz
        )

    def test_compressed_workload_is_faster(self):
        dense = schedule_workloads(self.gemms(), ACC, strategy="exhaustive")
        compressed_gemms = tuning_iteration_workload(
            CFG, 2, 16, 4, 0,
            bits_per_block={i: 4 for i in range(4)},
            sparsity_per_block={i: 0.5 for i in range(4)},
        )
        compressed = schedule_workloads(compressed_gemms, ACC, strategy="exhaustive")
        assert compressed.cycles < dense.cycles

    def test_empty_iteration_cost(self):
        from repro.hw import IterationCost

        cost = IterationCost([])
        assert cost.cycles == 0
        assert cost.mean_utilization == 0.0
