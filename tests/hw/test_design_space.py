"""Tests for accelerator design-space exploration."""

import pytest

from repro.hw import (
    AcceleratorSpec,
    GEMMWorkload,
    default_design_space,
    pareto_front,
    sweep_designs,
)

GEMMS = [
    GEMMWorkload("a", 256, 64, 64, bits=4, sparsity=0.3),
    GEMMWorkload("b", 256, 64, 176, bits=4),
    GEMMWorkload("c", 256, 64, 64, bits=16),
]


class TestSweep:
    def test_default_space_size(self):
        assert len(default_design_space()) == 3 * 2 * 2

    def test_sweep_evaluates_all(self):
        points = sweep_designs(GEMMS, strategy="heuristic")
        assert len(points) == len(default_design_space())
        assert all(p.cycles > 0 and p.energy_pj > 0 for p in points)

    def test_custom_designs(self):
        designs = [("tiny", AcceleratorSpec(pe_rows=8, pe_cols=8))]
        points = sweep_designs(GEMMS, designs=designs, strategy="heuristic")
        assert len(points) == 1
        assert points[0].name == "tiny"

    def test_empty_design_space_raises(self):
        with pytest.raises(ValueError):
            sweep_designs(GEMMS, designs=[])

    def test_bigger_array_not_slower_with_search(self):
        designs = [
            ("small", AcceleratorSpec(pe_rows=8, pe_cols=8)),
            ("big", AcceleratorSpec(pe_rows=32, pe_cols=32)),
        ]
        points = {p.name: p for p in sweep_designs(GEMMS, designs=designs)}
        assert points["big"].cycles <= points["small"].cycles


class TestParetoFront:
    def test_front_is_subset_and_sorted(self):
        points = sweep_designs(GEMMS, strategy="heuristic")
        front = pareto_front(points)
        assert front
        assert all(p in points for p in front)
        cycles = [p.cycles for p in front]
        assert cycles == sorted(cycles)

    def test_no_front_point_dominated(self):
        points = sweep_designs(GEMMS, strategy="heuristic")
        front = pareto_front(points)
        for p in front:
            for q in points:
                strictly_better = (
                    q.cycles <= p.cycles
                    and q.energy_pj <= p.energy_pj
                    and (q.cycles < p.cycles or q.energy_pj < p.energy_pj)
                )
                assert not strictly_better

    def test_every_point_dominated_by_someone_on_front(self):
        points = sweep_designs(GEMMS, strategy="heuristic")
        front = pareto_front(points)
        for p in points:
            assert any(
                q.cycles <= p.cycles and q.energy_pj <= p.energy_pj
                for q in front
            )

    def test_single_point_front(self):
        designs = [("only", AcceleratorSpec())]
        points = sweep_designs(GEMMS, designs=designs, strategy="heuristic")
        assert pareto_front(points) == points
