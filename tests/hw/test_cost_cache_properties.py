"""Properties that lock down cost-model memoization and cache keying.

Three families:

* memoized-vs-direct agreement — :func:`memoized_gemm_cost` must be an
  exact (bit-for-bit) stand-in for :func:`gemm_cost`, in memory and
  through a JSON round-trip on disk;
* cache-key hygiene — regression tests for the old ``_cache_key`` bug
  (workload-shape-only keys with sparsity rounded to 4 decimals, blind
  to accelerator and objective);
* monotonicity — for weight-stationary schedules with PE-aligned tiles
  that divide the GEMM dims, the modeled latency never increases when
  ``tile_k`` or ``tile_n`` grows (larger tiles ⇒ more reuse, same MACs).
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import AcceleratorSpec, GEMMWorkload, memoized_gemm_cost
from repro.hw.cost_model import gemm_cost, objective_value
from repro.hw.scheduling import Schedule
from repro.hw.search import _cache_key
from repro.parallel import EvalCache

ACC = AcceleratorSpec()


def fitting_schedule(workload, accel, tm, tn, tk, dataflow, double_buffer):
    s = Schedule(tm, tn, tk, dataflow, double_buffer)
    return s if s.fits(accel, workload.bits) else None


# ----------------------------------------------------------------------
# memoized == direct


class TestMemoizedAgreement:
    @settings(max_examples=60, deadline=None)
    @given(
        m=st.integers(8, 384),
        k=st.integers(8, 384),
        n=st.integers(8, 384),
        bits=st.sampled_from([2, 3, 4, 8, 16]),
        sparsity=st.floats(0.0, 0.95, allow_nan=False),
        tm=st.sampled_from([8, 16, 32, 64]),
        tn=st.sampled_from([8, 16, 32, 64]),
        tk=st.sampled_from([8, 16, 32, 64]),
        dataflow=st.sampled_from(
            ["weight_stationary", "output_stationary", "input_stationary"]
        ),
        double_buffer=st.booleans(),
    )
    def test_memory_cache_agrees_with_direct(
        self, m, k, n, bits, sparsity, tm, tn, tk, dataflow, double_buffer
    ):
        workload = GEMMWorkload("fuzz", m, k, n, bits=bits, sparsity=sparsity)
        schedule = fitting_schedule(
            workload, ACC, tm, tn, tk, dataflow, double_buffer
        )
        if schedule is None:
            return
        direct = gemm_cost(workload, schedule, ACC)
        cache = EvalCache()
        first = memoized_gemm_cost(workload, schedule, ACC, cache)
        second = memoized_gemm_cost(workload, schedule, ACC, cache)
        assert first == direct
        assert second == direct  # served from cache, still exact
        assert cache.hits == 1 and cache.misses == 1

    def test_disk_roundtrip_is_exact(self, tmp_path):
        workload = GEMMWorkload("w", 96, 64, 80, bits=4, sparsity=1.0 / 3.0)
        schedule = Schedule(16, 16, 32, "output_stationary", True)
        direct = gemm_cost(workload, schedule, ACC)
        memoized_gemm_cost(workload, schedule, ACC, EvalCache(str(tmp_path)))
        fresh = EvalCache(str(tmp_path))
        reloaded = memoized_gemm_cost(workload, schedule, ACC, fresh)
        assert fresh.hits == 1
        assert reloaded == direct  # JSON round-trip preserves every float bit

    def test_name_and_phase_do_not_split_entries(self):
        cache = EvalCache()
        schedule = Schedule(16, 16, 16)
        a = GEMMWorkload("attn_qkv", 64, 64, 64, bits=8, phase="fwd")
        b = GEMMWorkload("mlp_dW", 64, 64, 64, bits=8, phase="bwd")
        memoized_gemm_cost(a, schedule, ACC, cache)
        memoized_gemm_cost(b, schedule, ACC, cache)
        assert cache.hits == 1 and len(cache) == 1

    def test_sparsity_ulp_splits_entries(self):
        cache = EvalCache()
        schedule = Schedule(16, 16, 16)
        s = 0.123456789
        a = GEMMWorkload("a", 64, 64, 64, sparsity=s)
        b = GEMMWorkload("b", 64, 64, 64, sparsity=float(np.nextafter(s, 1.0)))
        memoized_gemm_cost(a, schedule, ACC, cache)
        memoized_gemm_cost(b, schedule, ACC, cache)
        assert cache.misses == 2 and len(cache) == 2

    def test_accelerator_splits_entries(self):
        cache = EvalCache()
        # A 32x32 tile runs in one pass on a 32x32 PE array but four
        # passes on the default 16x16 one, so compute cycles must differ.
        schedule = Schedule(32, 32, 16)
        w = GEMMWorkload("w", 64, 64, 64)
        small = memoized_gemm_cost(w, schedule, ACC, cache)
        big = memoized_gemm_cost(
            w, schedule, AcceleratorSpec(pe_rows=32, pe_cols=32), cache
        )
        assert cache.misses == 2
        assert small.compute_cycles != big.compute_cycles


# ----------------------------------------------------------------------
# _cache_key regression (the old key was (shape, round(sparsity, 4)))


class TestSearchCacheKey:
    W = GEMMWorkload("w", 64, 64, 64, bits=8, sparsity=0.12345)

    def test_key_depends_on_accelerator(self):
        other = AcceleratorSpec(pe_rows=32, pe_cols=32)
        assert _cache_key(self.W, ACC, "latency") != _cache_key(
            self.W, other, "latency"
        )

    def test_key_depends_on_objective(self):
        assert _cache_key(self.W, ACC, "latency") != _cache_key(
            self.W, ACC, "energy"
        )

    def test_key_does_not_round_sparsity(self):
        """0.12345 and 0.123449 agree to 4 decimals; the old key merged
        them and served one workload the other's schedule."""
        close = dataclasses.replace(self.W, sparsity=0.123449)
        assert _cache_key(self.W, ACC, "latency") != _cache_key(
            close, ACC, "latency"
        )

    def test_key_ignores_labels_but_not_shape(self):
        renamed = dataclasses.replace(self.W, name="other", phase="bwd")
        assert _cache_key(self.W, ACC, "latency") == _cache_key(
            renamed, ACC, "latency"
        )
        wider = dataclasses.replace(self.W, n=128)
        assert _cache_key(self.W, ACC, "latency") != _cache_key(
            wider, ACC, "latency"
        )

    @settings(max_examples=40, deadline=None)
    @given(
        bits=st.sampled_from([2, 4, 8]),
        sparsity=st.floats(0.0, 0.9, allow_nan=False),
        objective=st.sampled_from(["latency", "energy", "edp"]),
    )
    def test_identical_pricing_inputs_share_a_key(
        self, bits, sparsity, objective
    ):
        a = GEMMWorkload("a", 48, 96, 32, bits=bits, sparsity=sparsity)
        b = GEMMWorkload("b", 48, 96, 32, bits=bits, sparsity=sparsity)
        assert _cache_key(a, ACC, objective) == _cache_key(b, ACC, objective)


# ----------------------------------------------------------------------
# tile-growth monotonicity


def aligned_divisors(dim, align):
    """Multiples of ``align`` that divide ``dim``, ascending."""
    return [t for t in range(align, dim + 1, align) if dim % t == 0]


class TestTileGrowthMonotonicity:
    DIMS = [64, 128, 256]

    def latency(self, workload, schedule):
        return objective_value(gemm_cost(workload, schedule, ACC), "latency")

    @pytest.mark.parametrize("m", DIMS)
    @pytest.mark.parametrize("n", DIMS)
    @pytest.mark.parametrize("k", DIMS)
    def test_latency_non_increasing_in_tile_k(self, m, k, n):
        workload = GEMMWorkload("w", m, k, n, bits=8)
        checked = 0
        for tm in aligned_divisors(m, ACC.pe_rows):
            for tn in aligned_divisors(n, ACC.pe_cols):
                tks = [
                    tk
                    for tk in aligned_divisors(k, 8)
                    if Schedule(tm, tn, tk).fits(ACC, workload.bits)
                ]
                lat = [
                    self.latency(workload, Schedule(tm, tn, tk)) for tk in tks
                ]
                for small, big in zip(lat, lat[1:]):
                    assert big <= small
                    checked += 1
        assert checked > 0

    @pytest.mark.parametrize("m", DIMS)
    @pytest.mark.parametrize("n", DIMS)
    @pytest.mark.parametrize("k", DIMS)
    def test_latency_non_increasing_in_tile_n(self, m, k, n):
        workload = GEMMWorkload("w", m, k, n, bits=8)
        checked = 0
        for tm in aligned_divisors(m, ACC.pe_rows):
            for tk in aligned_divisors(k, 8):
                tns = [
                    tn
                    for tn in aligned_divisors(n, ACC.pe_cols)
                    if Schedule(tm, tn, tk).fits(ACC, workload.bits)
                ]
                lat = [
                    self.latency(workload, Schedule(tm, tn, tk)) for tn in tns
                ]
                for small, big in zip(lat, lat[1:]):
                    assert big <= small
                    checked += 1
        assert checked > 0
