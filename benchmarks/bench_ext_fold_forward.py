"""EXT — effective-weight folding: frozen-forward latency win.

A LUC-compressed layer's forward used to re-mask and re-calibrate
quantization on every call, even with frozen weights.  The transform
layer folds the mask -> fake-quant composition into a cached effective
weight keyed on the master weight's version counter, so frozen-weight
forwards (eval, sensitivity profiling, voting calibration, the frozen
prefix below the tuning window) pay the recalibration exactly once.

This bench times repeated no-grad forwards of a frozen LUC-compressed
model with folding on vs off (``fold_disabled()``).  The edge-decode
shape (batch 1, short sequence) is the headline: there the per-forward
matmul work is small, so mask-multiply + recalibration dominates and
folding must deliver >= 1.5x.  A larger batch row is reported for
context.  Fold-cache traffic is recorded through ``repro.obs`` counters.
"""

import time

import numpy as np

from repro.luc import LUCPolicy, LayerCompression, apply_luc
from repro.nn import TransformerLM
from repro.nn.transforms import fold_disabled
from repro.obs import MetricsRegistry, use_registry
from repro.tensor import no_grad

from .common import BATCH, SEQ, VOCAB, bench_config, emit

BITS = 4
PRUNE = 0.5
REPEATS = 30


def _compressed_model() -> TransformerLM:
    model = TransformerLM(bench_config())
    policy = LUCPolicy([LayerCompression(BITS, PRUNE)] * model.num_layers)
    apply_luc(model, policy)
    model.requires_grad_(False)
    model.eval()
    return model


def _time_forwards(model, ids, repeats=REPEATS):
    with no_grad():
        model(ids)  # warmup: populates the fold cache when enabled
        start = time.perf_counter()
        for _ in range(repeats):
            out = model(ids)
        elapsed = time.perf_counter() - start
    return out.data, elapsed / repeats


def test_ext_fold_forward(benchmark):
    model = _compressed_model()
    shapes = [("edge decode", 1, 16), ("calibration batch", BATCH, SEQ)]
    rows, metrics = [], {}
    reg = MetricsRegistry()

    for label, batch, seq in shapes:
        ids = np.random.default_rng(0).integers(0, VOCAB, (batch, seq))
        with use_registry(reg):
            folded_out, folded_s = _time_forwards(model, ids)
        with fold_disabled():
            unfolded_out, unfolded_s = _time_forwards(model, ids)
        # Folding is an optimization, not a numerics change.
        assert np.array_equal(folded_out, unfolded_out)

        speedup = unfolded_s / folded_s
        slug = label.split()[0]
        rows.append([label, batch, seq, round(unfolded_s * 1e3, 3),
                     round(folded_s * 1e3, 3), round(speedup, 2)])
        metrics[f"{slug}_unfolded_ms"] = unfolded_s * 1e3
        metrics[f"{slug}_folded_ms"] = folded_s * 1e3
        metrics[f"{slug}_speedup"] = speedup

    metrics["fold_hits"] = reg.counter("nn/fold/hits").value
    metrics["fold_misses"] = reg.counter("nn/fold/misses").value

    emit(
        "ext_fold_forward",
        "EXT: frozen-forward latency, folded vs unfolded "
        f"(LUC {BITS}-bit / {PRUNE:.0%} pruned, all blocks)",
        ["shape", "batch", "seq", "unfolded_ms", "folded_ms", "speedup"],
        rows,
        metrics=metrics,
        config={"bits": BITS, "prune_ratio": PRUNE, "repeats": REPEATS},
    )

    # Each compressed Linear misses once (warmup), then always hits.
    assert metrics["fold_misses"] > 0
    assert metrics["fold_hits"] > metrics["fold_misses"]

    # Acceptance bar: >= 1.5x on the edge-decode shape, where the
    # recalibration overhead dominates the small matmuls.
    assert metrics["edge_speedup"] >= 1.5

    benchmark.pedantic(
        lambda: _time_forwards(
            model, np.random.default_rng(0).integers(0, VOCAB, (1, 16)),
            repeats=3,
        ),
        rounds=3,
        iterations=1,
    )
