"""R-A1 — ablation: exit-combination rule for adaptive layer voting.

Compares inference quality after adaptive layer tuning when the final
prediction comes from: each single exit alone, the last layer alone,
uniform mixing, winner-take-all ("best"), calibrated softmax weights (the
paper's scheme), and per-token confidence weighting.
"""

from repro.adaptive import AdaptiveLayerTrainer, AdaptiveTuningConfig, VotingCombiner
from repro.eval import multiple_choice_accuracy, perplexity
from repro.tensor import no_grad

from .common import (
    ADAPT_STEPS,
    EXIT_POINTS,
    WINDOW,
    adapt_batches,
    adapt_corpus,
    calib_batch,
    clone_model,
    emit,
    qa_task,
)


def test_abl_voting_strategies(base_state, benchmark):
    model = clone_model(base_state)
    trainer = AdaptiveLayerTrainer(
        model, AdaptiveTuningConfig(window=WINDOW, exit_points=EXIT_POINTS, lr=2e-3)
    )
    trainer.train(adapt_batches(ADAPT_STEPS))
    corpus = adapt_corpus()
    qa_items = qa_task().dataset(50)
    calib = calib_batch(corpus, seed=99)

    rows = []

    # Single exits (incl. the final head).
    def exit_logits_fn(point):
        def fn(ids):
            with no_grad():
                return trainer.exit_heads.all_logits(model, ids)[point]
        return fn

    single_ppl = {}
    for point in sorted(set(EXIT_POINTS) | {model.num_layers}):
        fn = exit_logits_fn(point)
        ppl = perplexity(fn, corpus, num_batches=3)
        acc = multiple_choice_accuracy(fn, qa_items)
        single_ppl[point] = ppl
        rows.append([f"single exit @ {point}", ppl, acc])

    voting_ppl = {}
    for strategy in ("uniform", "best", "calibrated", "confidence"):
        voter = VotingCombiner(model, trainer.exit_heads, strategy=strategy)
        if strategy != "confidence":
            voter.calibrate(*calib)
        else:
            voter.calibrate(*calib)  # priors recorded; weights are per-token
        ppl = perplexity(voter.combined_logits, corpus, num_batches=3)
        acc = multiple_choice_accuracy(voter.combined_logits, qa_items)
        voting_ppl[strategy] = ppl
        rows.append([f"voting: {strategy}", ppl, acc])

    worst_single = max(single_ppl.values())
    best_single = min(single_ppl.values())
    emit(
        "abl_voting",
        "R-A1: exit combination ablation after adaptive layer tuning",
        ["inference scheme", "ppl (down)", "QA acc"],
        rows,
        metrics={
            "best_single_exit_ppl": best_single,
            "worst_single_exit_ppl": worst_single,
            **{f"{name}_ppl": voting_ppl[name] for name in voting_ppl},
        },
    )
    # Calibrated voting must be robust: never worse than the worst exit,
    # and within a modest factor of the best single exit.
    assert voting_ppl["calibrated"] < worst_single
    assert voting_ppl["calibrated"] <= best_single * 1.3

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
