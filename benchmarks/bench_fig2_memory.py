"""R-F2 — memory vs backprop depth (the adaptive-layer-tuning enabler).

Sweeps the tuning window and reports the per-iteration memory breakdown
from the analytical model: activation memory scales with the gradient
window, optimizer/gradient memory with the trainable subset, while vanilla
tuning pays for the full stack.
"""

import pytest

from repro.adaptive import (
    AdaptiveLayerTrainer,
    AdaptiveTuningConfig,
    checkpointed_trainer,
    vanilla_trainer,
)
from repro.hw import total_macs, tuning_iteration_workload

from .common import BATCH, EXIT_POINTS, SEQ, bench_config, clone_model, emit


def test_fig2_memory_vs_window(base_state, benchmark):
    cfg = bench_config()
    rows = []
    for window in (1, 2, 4):
        model = clone_model(base_state)
        trainer = AdaptiveLayerTrainer(
            model,
            AdaptiveTuningConfig(window=window, exit_points=EXIT_POINTS),
        )
        report = trainer.memory_report(BATCH, SEQ)
        rows.append([
            f"adaptive, window={window}",
            report.activation_bytes / 1e6,
            report.gradient_bytes / 1e6,
            report.optimizer_bytes / 1e6,
            report.total_bytes / 1e6,
        ])
    # Gradient checkpointing: the classic memory/compute trade — small
    # activations like the adaptive window, but full-depth gradients,
    # full optimizer state, and ~1.5x forward compute.
    model = clone_model(base_state)
    ckpt = checkpointed_trainer(model)
    report = ckpt.memory_report(BATCH, SEQ)
    rows.append([
        "grad checkpointing (full depth)",
        report.activation_bytes / 1e6,
        report.gradient_bytes / 1e6,
        report.optimizer_bytes / 1e6,
        report.total_bytes / 1e6,
    ])

    model = clone_model(base_state)
    vanilla = vanilla_trainer(model)
    report = vanilla.memory_report(BATCH, SEQ)
    rows.append([
        "vanilla (full backprop)",
        report.activation_bytes / 1e6,
        report.gradient_bytes / 1e6,
        report.optimizer_bytes / 1e6,
        report.total_bytes / 1e6,
    ])

    act_by_name = {r[0]: r[1] for r in rows}
    total_by_name = {r[0]: r[4] for r in rows}
    emit(
        "fig2_memory",
        "R-F2: per-iteration tuning memory vs gradient window "
        f"(batch={BATCH}, seq={SEQ}, {cfg.num_layers} layers)",
        ["configuration", "act MB", "grad MB", "opt MB", "total MB"],
        rows,
        metrics={
            "adaptive_w2_act_mb": act_by_name["adaptive, window=2"],
            "vanilla_act_mb": act_by_name["vanilla (full backprop)"],
            "adaptive_w2_total_mb": total_by_name["adaptive, window=2"],
            "vanilla_total_mb": total_by_name["vanilla (full backprop)"],
            "act_reduction_w2": (
                act_by_name["vanilla (full backprop)"]
                / act_by_name["adaptive, window=2"]
            ),
        },
    )

    # Activation memory must scale linearly with the window and the
    # vanilla row must dominate everything.
    act = {r[0]: r[1] for r in rows}
    assert act["adaptive, window=2"] == pytest.approx(
        2 * act["adaptive, window=1"], rel=0.01
    )
    assert act["vanilla (full backprop)"] > 1.9 * act["adaptive, window=4"]
    totals = {r[0]: r[4] for r in rows}
    assert totals["vanilla (full backprop)"] == max(totals.values())
    # Checkpointing fixes activations but keeps full optimizer state, so
    # adaptive windows still win on total memory...
    assert totals["adaptive, window=2"] < totals["grad checkpointing (full depth)"]
    # ...and checkpointing pays ~1.5x the compute where the window pays less.
    cfg_ = bench_config()
    ckpt_macs = total_macs(
        tuning_iteration_workload(
            cfg_, BATCH, SEQ, cfg_.num_layers, 0, checkpoint_recompute=True
        )
    )
    plain_macs = total_macs(
        tuning_iteration_workload(cfg_, BATCH, SEQ, cfg_.num_layers, 0)
    )
    assert ckpt_macs > plain_macs

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
