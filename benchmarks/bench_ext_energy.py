"""EXT-E1 — extension: energy and cross-accelerator comparison.

Beyond the paper's latency-focused evaluation: the same Edge-LLM iteration
workload priced on two accelerator archetypes (GPU-like vs TPU-like) under
latency- vs energy-optimized schedule search, reporting cycles, energy and
the energy-delay product.
"""

from repro.hw import (
    EDGE_GPU_LIKE,
    EDGE_TPU_LIKE,
    schedule_workloads,
    tuning_iteration_workload,
)
from repro.luc import LUCPolicy

from .common import BATCH, SEQ, WINDOW, bench_config, emit

POLICY = LUCPolicy.uniform(8, 4, 0.3)


def _workload(cfg):
    return tuning_iteration_workload(
        cfg, BATCH, SEQ,
        forward_blocks=6, grad_start=6 - WINDOW,
        bits_per_block=POLICY.bits_per_block(),
        sparsity_per_block=POLICY.sparsity_per_block(),
    )


def test_ext_energy_objectives(base_state, benchmark):
    cfg = bench_config()
    gemms = _workload(cfg)
    rows = []
    results = {}
    for accel_name, accel in [("edge-GPU-like", EDGE_GPU_LIKE),
                              ("edge-TPU-like", EDGE_TPU_LIKE)]:
        for objective in ("latency", "energy", "edp"):
            cost = schedule_workloads(
                gemms, accel, strategy="exhaustive", objective=objective
            )
            results[(accel_name, objective)] = cost
            rows.append([
                accel_name,
                objective,
                cost.cycles / 1e6,
                cost.energy_pj / 1e6,
                (cost.cycles * cost.energy_pj) / 1e12,
                cost.mean_utilization,
            ])

    emit(
        "ext_energy",
        "EXT-E1: Edge-LLM iteration across accelerators and objectives",
        ["accelerator", "objective", "Mcycles", "energy uJ", "EDP (au)",
         "mean util"],
        rows,
        metrics={
            "gpu_latency_mcycles": (
                results[("edge-GPU-like", "latency")].cycles / 1e6
            ),
            "tpu_latency_mcycles": (
                results[("edge-TPU-like", "latency")].cycles / 1e6
            ),
            "gpu_energy_uj": (
                results[("edge-GPU-like", "energy")].energy_pj / 1e6
            ),
            "tpu_energy_uj": (
                results[("edge-TPU-like", "energy")].energy_pj / 1e6
            ),
        },
        config={"policy_bits": 4, "policy_sparsity": 0.3},
    )

    for accel_name in ("edge-GPU-like", "edge-TPU-like"):
        lat = results[(accel_name, "latency")]
        eng = results[(accel_name, "energy")]
        edp = results[(accel_name, "edp")]
        # Each objective must win (or tie) on its own metric.
        assert lat.cycles <= eng.cycles + 1e-6
        assert eng.energy_pj <= lat.energy_pj + 1e-6
        assert (edp.cycles * edp.energy_pj) <= (
            lat.cycles * lat.energy_pj
        ) * (1 + 1e-9)

    benchmark.pedantic(
        lambda: schedule_workloads(gemms, EDGE_TPU_LIKE, strategy="exhaustive",
                                   objective="edp"),
        rounds=3, iterations=1,
    )
