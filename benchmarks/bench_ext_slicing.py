"""EXT — structural rotate-and-slice: real FLOP and wall-clock wins.

Unlike LUC's fake-quant + masking (which rescale the *cost model* but
run full-shape matmuls), the rotate-and-slice pass (``repro.nn.slicing``)
rewrites the network to genuinely smaller weight matrices: per-junction
PCA rotations concentrate residual energy, the low-energy tail is cut,
and shortcut rotations carry the residual path between bases.

This bench pretrains a wider-than-default backbone (the shapes where
GEMM work, not interpreter overhead, dominates a decode step), slices it
to half residual width, and checks three bars that CI enforces through
``validate_results --min-metric``:

* ``flop_reduction``  >= 1.3x fewer modeled decode MACs
  (``repro.hw.decode_step_workload`` on the sliced shapes),
* ``decode_speedup``  >= 1.3x measured batched KV-cache decode
  wall-clock,
* ``ppl_within_bar``  sliced perplexity within 1% of the unsliced model
  on the pretraining language.
"""

import time

import numpy as np

from repro.data import MarkovChainCorpus, lm_batches
from repro.eval import model_perplexity
from repro.hw import decode_step_workload, total_macs
from repro.nn import (
    AdamW,
    TransformerConfig,
    TransformerLM,
    rotate_and_slice,
)
from repro.tensor import cross_entropy, no_grad

from .common import BATCH, PRETRAIN_SEED, PRETRAIN_STEPS, SEQ, VOCAB, emit

# Wider/shallower than the shared bench model: slicing's win is matmul
# work, so the residual width must be large enough for GEMM time to
# dominate the per-op interpreter overhead of a decode step.
DIM = 384
LAYERS = 6
HEADS = 4
SLICE_RATIO = 0.5
CALIB_BATCH = 64  # 384-dim junction covariances need >> dim samples
DECODE_BATCH = 16
PROMPT_LEN = 16
DECODE_TOKENS = 24
REPEATS = 3
PPL_BAR = 1.01  # sliced ppl must stay within 1% of the base model


def _config() -> TransformerConfig:
    return TransformerConfig(
        vocab_size=VOCAB, dim=DIM, num_layers=LAYERS, num_heads=HEADS,
        max_len=128, seed=0,
    )


def _pretrain(corpus) -> TransformerLM:
    model = TransformerLM(_config())
    rng = np.random.default_rng(0)
    opt = AdamW(model.parameters(), lr=3e-3)
    for inputs, targets in lm_batches(corpus, BATCH, SEQ, PRETRAIN_STEPS, rng):
        loss = cross_entropy(model(inputs), targets)
        opt.zero_grad()
        loss.backward()
        opt.step()
    return model


def _time_decode(model, repeats: int = REPEATS) -> float:
    """Best-of-N batched teacher-forced KV-cache decode wall-clock."""
    rng = np.random.default_rng(0)
    prompt = rng.integers(0, VOCAB, (DECODE_BATCH, PROMPT_LEN))
    tokens = rng.integers(0, VOCAB, (DECODE_BATCH, DECODE_TOKENS))
    best = np.inf
    with no_grad():
        for _ in range(repeats):
            caches = model.new_caches()
            model(prompt, caches=caches)  # prefill (not timed)
            start = time.perf_counter()
            for t in range(DECODE_TOKENS):
                model(tokens[:, t : t + 1], caches=caches)
            best = min(best, time.perf_counter() - start)
    return best


def _decode_macs(config, slice_dims=None) -> int:
    return total_macs(
        decode_step_workload(
            config, DECODE_BATCH, PROMPT_LEN + DECODE_TOKENS // 2,
            slice_per_block=slice_dims,
        )
    )


def test_ext_slicing(benchmark):
    corpus = MarkovChainCorpus(vocab_size=VOCAB, order=1, seed=PRETRAIN_SEED)
    base = _pretrain(corpus)
    base.eval()
    base_ppl = model_perplexity(base, corpus, batch_size=BATCH, seq_len=SEQ)

    sliced = TransformerLM(_config())
    sliced.load_state_dict(base.state_dict())
    calib, _ = next(
        lm_batches(corpus, CALIB_BATCH, SEQ, 1, np.random.default_rng(42))
    )
    spec = rotate_and_slice(sliced, calib, SLICE_RATIO)
    sliced.eval()
    sliced_ppl = model_perplexity(sliced, corpus, batch_size=BATCH, seq_len=SEQ)

    # The slice must be structural: the projections really are smaller.
    sliced_dim = sliced.blocks[0].attn.q_proj.in_features
    assert sliced_dim < DIM

    base_s = _time_decode(base)
    sliced_s = _time_decode(sliced)
    base_macs = _decode_macs(base.config)
    sliced_macs = _decode_macs(sliced.config, spec.hw_dims())

    decode_speedup = base_s / sliced_s
    flop_reduction = base_macs / sliced_macs
    ppl_ratio = sliced_ppl / base_ppl
    metrics = {
        "decode_speedup": decode_speedup,
        "flop_reduction": flop_reduction,
        "ppl_base": base_ppl,
        "ppl_sliced": sliced_ppl,
        "ppl_ratio": ppl_ratio,
        "ppl_within_bar": int(ppl_ratio <= PPL_BAR),
    }
    rows = [
        ["full", DIM, round(base_s * 1e3, 1), base_macs,
         round(base_ppl, 4), 1.0],
        ["sliced", sliced_dim, round(sliced_s * 1e3, 1), sliced_macs,
         round(sliced_ppl, 4), round(ppl_ratio, 4)],
    ]
    emit(
        "ext_slicing",
        f"EXT: rotate-and-slice at {SLICE_RATIO:.0%} residual width "
        f"(dim {DIM}, {LAYERS} layers, batch-{DECODE_BATCH} decode)",
        ["model", "residual_dim", "decode_ms", "decode_macs", "ppl",
         "ppl_ratio"],
        rows,
        metrics=metrics,
        config={
            "slice_dim": DIM, "slice_layers": LAYERS,
            "slice_ratio": SLICE_RATIO, "calib_batch": CALIB_BATCH,
            "decode_batch": DECODE_BATCH, "prompt_len": PROMPT_LEN,
            "decode_tokens": DECODE_TOKENS, "repeats": REPEATS,
            "ppl_bar": PPL_BAR,
        },
    )

    # Acceptance bars (mirrored in CI by validate_results --min-metric).
    assert flop_reduction >= 1.3
    assert decode_speedup >= 1.3
    assert metrics["ppl_within_bar"] == 1

    benchmark.pedantic(
        lambda: _time_decode(sliced, repeats=1), rounds=3, iterations=1
    )
