"""EXT-E2 — extension: the compression/quality frontier.

Sweeps the LUC compute budget and reports, for each point, the policy the
greedy search picks, the post-compression perplexity, the perplexity after
a fixed adaptation run, and the modeled iteration cost — the
cost-vs-quality frontier a deployment engineer would pick an operating
point from.  Also contrasts one-shot vs iterative compression at the
harshest budget.
"""

import numpy as np

from repro.adaptive import vanilla_trainer
from repro.data import lm_batches
from repro.eval import model_perplexity
from repro.hw import EDGE_GPU_LIKE, schedule_workloads, tuning_iteration_workload
from repro.luc import (
    apply_luc,
    enumerate_layer_options,
    iterative_compress,
    measure_sensitivity,
    search_policy,
)

from .common import (
    BATCH,
    SEQ,
    bench_config,
    calib_batch,
    clone_model,
    emit,
    pretrain_corpus,
)

OPTIONS = enumerate_layer_options((2, 4, 8), (0.0, 0.3, 0.5))
BUDGETS = (0.5, 0.3, 0.2, 0.125)
RECOVERY_STEPS = 20


def _iteration_mcycles(cfg, policy):
    gemms = tuning_iteration_workload(
        cfg, BATCH, SEQ, cfg.num_layers, 0,
        bits_per_block=policy.bits_per_block(),
        sparsity_per_block=policy.sparsity_per_block(),
    )
    return schedule_workloads(gemms, EDGE_GPU_LIKE, strategy="exhaustive").cycles / 1e6


def test_ext_budget_frontier(base_state, benchmark):
    cfg = bench_config()
    corpus = pretrain_corpus()
    base_ppl = model_perplexity(clone_model(base_state), corpus, num_batches=3)
    profile = measure_sensitivity(
        clone_model(base_state), *calib_batch(corpus), OPTIONS,
        metric="loss_delta",
    )

    rows = [["uncompressed", 1.0, base_ppl, base_ppl,
             _iteration_mcycles(cfg, _dense_policy(cfg))]]
    frontier = []
    for budget in BUDGETS:
        policy = search_policy(profile, cfg.num_layers, budget, options=OPTIONS)
        model = clone_model(base_state)
        apply_luc(model, policy)
        post = model_perplexity(model, corpus, num_batches=3)
        vanilla_trainer(model, lr=1e-3).train(
            lm_batches(corpus, BATCH, SEQ, RECOVERY_STEPS, np.random.default_rng(3))
        )
        recovered = model_perplexity(model, corpus, num_batches=3)
        mcycles = _iteration_mcycles(cfg, policy)
        frontier.append((budget, recovered, mcycles))
        rows.append([f"one-shot @ {budget}", policy.cost(), post, recovered,
                     mcycles])

    # Iterative compression at the harshest budget.
    model = clone_model(base_state)
    calib_in, calib_tg = calib_batch(corpus)
    history = iterative_compress(
        model, calib_in, calib_tg,
        lambda: lm_batches(corpus, BATCH, SEQ, RECOVERY_STEPS,
                           np.random.default_rng(4)),
        target_budget=BUDGETS[-1], rounds=3,
        recovery_steps=RECOVERY_STEPS // 2, options=OPTIONS,
    )
    iter_ppl = model_perplexity(model, corpus, num_batches=3)
    rows.append([
        f"iterative (3 rounds) @ {BUDGETS[-1]}",
        history[-1].policy.cost(),
        float("nan"),
        iter_ppl,
        _iteration_mcycles(cfg, history[-1].policy),
    ])

    emit(
        "ext_frontier",
        "EXT-E2: compression budget vs quality vs modeled iteration cost\n"
        f"(recovery = {RECOVERY_STEPS} steps; base ppl {base_ppl:.3f})",
        ["configuration", "cost", "ppl post", "ppl recovered", "Mcycles/iter"],
        rows,
        metrics={
            "base_ppl": base_ppl,
            "harshest_budget": BUDGETS[-1],
            "harshest_recovered_ppl": frontier[-1][1],
            "harshest_mcycles": frontier[-1][2],
            "iterative_recovered_ppl": iter_ppl,
        },
        config={"budgets": list(BUDGETS), "recovery_steps": RECOVERY_STEPS},
    )

    # Frontier sanity: cost decreases monotonically with budget, quality
    # degrades (weakly) as compression tightens.
    cycles = [f[2] for f in frontier]
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))
    assert frontier[-1][1] < base_ppl * 1.5  # harshest point still usable
    # Iterative must not lose to one-shot at the same harsh budget.
    oneshot_h = [f for f in frontier if f[0] == BUDGETS[-1]][0][1]
    assert iter_ppl <= oneshot_h * 1.15

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def _dense_policy(cfg):
    from repro.luc import LUCPolicy

    return LUCPolicy.uncompressed(cfg.num_layers)
