"""R-A2 — ablation: layer-subset selection schedule.

Same tuning budget (steps, window, exits), different rules for choosing
which window to tune each iteration: round-robin over exits, uniform
random, importance sampling (loss-EMA weighted), fixed-shallow (always the
first exit), and vanilla full-depth as the reference.

Two metrics matter: the voted perplexity, and the *worst single exit* —
a schedule that never visits deep windows leaves those exits unadapted,
which is what the depth-covering schedules fix (and what the voting
mechanism relies on).
"""

import numpy as np

from repro.adaptive import (
    AdaptiveLayerTrainer,
    AdaptiveTuningConfig,
    VotingCombiner,
    vanilla_trainer,
)
from repro.eval import perplexity

from .common import (
    ADAPT_STEPS,
    EXIT_POINTS,
    WINDOW,
    adapt_batches,
    adapt_corpus,
    calib_batch,
    clone_model,
    emit,
)


def _run(base_state, schedule_name):
    model = clone_model(base_state)
    trainer = AdaptiveLayerTrainer(
        model,
        AdaptiveTuningConfig(
            window=WINDOW, exit_points=EXIT_POINTS, schedule=schedule_name, lr=2e-3
        ),
    )
    trainer.train(adapt_batches(ADAPT_STEPS))
    voter = VotingCombiner(model, trainer.exit_heads, strategy="calibrated")
    voter.calibrate(*calib_batch(adapt_corpus(), seed=99))
    voted_ppl = perplexity(voter.combined_logits, adapt_corpus(), num_batches=3)
    exit_ppls = {
        p: float(np.exp(val)) for p, val in voter.validation_losses.items()
    }
    return voted_ppl, exit_ppls


def test_abl_layer_selection(base_state, benchmark):
    rows = []
    results = {}
    for name in ("round_robin", "random", "importance", "fixed_shallow"):
        voted, exit_ppls = _run(base_state, name)
        results[name] = (voted, exit_ppls)
        rows.append([
            name,
            voted,
            min(exit_ppls.values()),
            max(exit_ppls.values()),
        ])

    # Vanilla full-depth reference at the same step budget.
    model = clone_model(base_state)
    trainer = vanilla_trainer(model, lr=1e-3)
    trainer.train(adapt_batches(ADAPT_STEPS))
    from repro.eval import model_perplexity

    vanilla_ppl = model_perplexity(model, adapt_corpus(), num_batches=3)
    rows.append(["vanilla full depth", vanilla_ppl, vanilla_ppl, vanilla_ppl])

    emit(
        "abl_selection",
        "R-A2: layer-selection schedule ablation "
        f"({ADAPT_STEPS} steps, window={WINDOW}, calibrated voting)",
        ["schedule", "voted ppl", "best exit ppl", "worst exit ppl"],
        rows,
        metrics={
            "vanilla_ppl": vanilla_ppl,
            **{
                f"{name}_voted_ppl": results[name][0]
                for name in ("round_robin", "random", "importance", "fixed_shallow")
            },
        },
    )

    # NOTE (documented in EXPERIMENTS.md): with tied embeddings and a
    # surface-statistics domain shift, shallow-window updates transfer up
    # the whole trunk, so fixed_shallow is competitive here — a property
    # of the synthetic substitution, not of the schedules.  The robust
    # claims this ablation checks:
    zero_shot = 100.0  # adaptation must be far from the unadapted ~1000s
    for name in ("round_robin", "random", "importance", "fixed_shallow"):
        voted, _ = results[name]
        assert voted < zero_shot, f"{name} failed to adapt"
        # Every schedule's voted inference lands in the same regime as
        # same-budget vanilla tuning (paper: "comparable accuracy").
        assert voted < vanilla_ppl * 3.0, f"{name} far from vanilla"
    # Depth-covering schedules keep their exits balanced (no exit is left
    # a long way behind the best one).
    for name in ("round_robin", "random", "importance"):
        _, exit_ppls = results[name]
        assert max(exit_ppls.values()) < 2.0 * min(exit_ppls.values())

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
