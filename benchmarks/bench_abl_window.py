"""R-A5 — ablation: tuning-window size (quality vs memory vs compute).

The window is adaptive layer tuning's single most important knob: it
bounds activation memory and backward compute, but a too-small window
updates too few parameters per iteration.  Sweep window ∈ {1, 2, 4} at a
fixed step budget and report adapted quality, per-iteration memory, and
modeled cycles.
"""

import numpy as np

from repro.adaptive import AdaptiveLayerTrainer, AdaptiveTuningConfig, VotingCombiner
from repro.eval import perplexity
from repro.hw import EDGE_GPU_LIKE, schedule_workloads, tuning_iteration_workload

from .common import (
    ADAPT_STEPS,
    BATCH,
    EXIT_POINTS,
    SEQ,
    adapt_batches,
    adapt_corpus,
    bench_config,
    calib_batch,
    clone_model,
    emit,
)


def _mean_cycles(cfg, window):
    totals = []
    for exit_point in EXIT_POINTS:
        gemms = tuning_iteration_workload(
            cfg, BATCH, SEQ,
            forward_blocks=exit_point,
            grad_start=max(exit_point - window, 0),
        )
        totals.append(
            schedule_workloads(gemms, EDGE_GPU_LIKE, strategy="exhaustive").cycles
        )
    return float(np.mean(totals)) / 1e6


def test_abl_window_tradeoff(base_state, benchmark):
    cfg = bench_config()
    corpus = adapt_corpus()
    rows = []
    results = {}
    for window in (1, 2, 4):
        model = clone_model(base_state)
        trainer = AdaptiveLayerTrainer(
            model,
            AdaptiveTuningConfig(window=window, exit_points=EXIT_POINTS, lr=2e-3),
        )
        trainer.train(adapt_batches(ADAPT_STEPS))
        voter = VotingCombiner(model, trainer.exit_heads)
        voter.calibrate(*calib_batch(corpus, seed=99))
        ppl = perplexity(voter.combined_logits, corpus, num_batches=3)
        memory = trainer.memory_report(BATCH, SEQ)
        results[window] = (ppl, memory.total_bytes)
        rows.append([
            f"window={window}",
            ppl,
            memory.activation_bytes / 1e6,
            memory.total_bytes / 1e6,
            _mean_cycles(cfg, window),
        ])

    emit(
        "abl_window",
        f"R-A5: tuning-window sweep ({ADAPT_STEPS} steps, exits {EXIT_POINTS})",
        ["configuration", "voted ppl", "act MB", "total MB", "Mcycles/iter"],
        rows,
        metrics={
            **{f"window_{w}_voted_ppl": results[w][0] for w in (1, 2, 4)},
            **{
                f"window_{w}_total_mb": results[w][1] / 1e6 for w in (1, 2, 4)
            },
        },
    )

    # Memory and compute must rise monotonically with the window...
    mems = [results[w][1] for w in (1, 2, 4)]
    assert mems[0] < mems[1] < mems[2]
    # ...and every window must adapt (far below the ~1000 zero-shot ppl).
    assert all(results[w][0] < 100 for w in (1, 2, 4))

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
