"""EXT — serving throughput: batched continuous decode vs sequential.

The serving runtime (``repro.serve``) decodes every resident request in
one stacked model forward per step instead of one forward per request.
Per step the fixed python/layer overhead (norms, projections, rope,
mask construction) is paid once for the whole batch, so at batch 8 the
runtime must clear >= 2x the sequential tokens/s — while producing
*identical* greedy tokens per request (the determinism contract: batching
changes throughput, never results).

A voting/early-exit row is reported for context: decoding through the
calibrated exit mixture with a confidence threshold ends confident
tokens' forwards at shallow exits (early-exit rate reported via the
``serve/early_exit_tokens`` counter).
"""

import time

import numpy as np

from repro.adaptive import ExitHeadSet, VotingCombiner
from repro.nn import TransformerLM
from repro.obs import MetricsRegistry, use_registry
from repro.serve import Request, serve_batch

from .common import EXIT_POINTS, VOCAB, bench_config, calib_batch, emit, pretrain_corpus

NUM_REQUESTS = 8
PROMPT_LEN = 16
MAX_NEW = 32
CONFIDENCE = 0.5


def _requests():
    rng = np.random.default_rng(7)
    return [
        Request(
            f"req-{i}",
            prompt=rng.integers(0, VOCAB, PROMPT_LEN).tolist(),
            max_new_tokens=MAX_NEW,
        )
        for i in range(NUM_REQUESTS)
    ]


def _serve(model, reqs, max_batch_size, **kw):
    reg = MetricsRegistry()
    with use_registry(reg):
        start = time.perf_counter()
        results = serve_batch(
            model, reqs, max_batch_size=max_batch_size, **kw
        )
        elapsed = time.perf_counter() - start
    return results, elapsed, reg


def test_ext_serving(benchmark):
    model = TransformerLM(bench_config())
    reqs = _requests()
    total_new = NUM_REQUESTS * MAX_NEW

    sequential, seq_s, _ = _serve(model, reqs, max_batch_size=1)
    batched, batch_s, reg = _serve(model, reqs, max_batch_size=NUM_REQUESTS)

    # Determinism contract: batching must not change a single token.
    for s, b in zip(sequential, batched):
        assert s.tokens == b.tokens
        assert s.finish_reason == b.finish_reason == "length"

    speedup = seq_s / batch_s
    seq_tok_s = total_new / seq_s
    batch_tok_s = total_new / batch_s

    # Context row: voting decode with confidence-based early exit.
    heads = ExitHeadSet(model, exit_points=EXIT_POINTS)
    voting = VotingCombiner(model, heads)
    voting.calibrate(*calib_batch(pretrain_corpus()))
    voted, vote_s, vote_reg = _serve(
        model, reqs, max_batch_size=NUM_REQUESTS,
        voting=voting, confidence_threshold=CONFIDENCE,
    )
    early_tokens = vote_reg.counter("serve/early_exit_tokens").value
    early_rate = early_tokens / total_new

    rows = [
        ["sequential", 1, NUM_REQUESTS, total_new,
         round(seq_s * 1e3, 1), round(seq_tok_s, 1), 1.0],
        ["batched", NUM_REQUESTS, NUM_REQUESTS, total_new,
         round(batch_s * 1e3, 1), round(batch_tok_s, 1),
         round(speedup, 2)],
        ["batched+voting+early-exit", NUM_REQUESTS, NUM_REQUESTS, total_new,
         round(vote_s * 1e3, 1), round(total_new / vote_s, 1),
         round(seq_s / vote_s, 2)],
    ]
    metrics = {
        "sequential_tok_s": seq_tok_s,
        "batched_tok_s": batch_tok_s,
        "speedup": speedup,
        "decode_steps": reg.counter("serve/decode_steps").value,
        "early_exit_rate": early_rate,
    }
    emit(
        "ext_serving",
        f"EXT: serving throughput, batch {NUM_REQUESTS} continuous decode "
        f"vs sequential ({NUM_REQUESTS} greedy requests, "
        f"{PROMPT_LEN}+{MAX_NEW} tokens)",
        ["mode", "batch", "requests", "new_tokens", "time_ms",
         "tokens_per_s", "speedup"],
        rows,
        metrics=metrics,
        config={
            "requests": NUM_REQUESTS,
            "prompt_len": PROMPT_LEN,
            "max_new_tokens": MAX_NEW,
            "confidence_threshold": CONFIDENCE,
        },
    )

    # Batched decode runs one stacked forward per step, not one per
    # request: 8 requests of 32 tokens need only 32 decode steps.
    assert metrics["decode_steps"] < total_new

    # Acceptance bar: >= 2x sequential tokens/s at batch 8 with
    # identical greedy outputs (asserted above).
    assert speedup >= 2.0

    benchmark.pedantic(
        lambda: _serve(
            model,
            [Request("smoke", prompt=[1, 2, 3], max_new_tokens=4)],
            max_batch_size=1,
        ),
        rounds=3,
        iterations=1,
    )
