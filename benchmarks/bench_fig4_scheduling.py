"""R-F4 — hardware schedule search on the LUC-compressed workload.

The paper's component #3: compressed, irregular layer-wise workloads
underutilize a fixed mapping; searching the schedule space recovers
utilization.  Rows: scheduling strategy -> modeled cycles, mean PE
utilization, DRAM traffic — on the *same* Edge-LLM iteration workload.
"""

from repro.hw import EDGE_GPU_LIKE, schedule_workloads, tuning_iteration_workload
from repro.luc import enumerate_layer_options, measure_sensitivity, search_policy

from .common import (
    BATCH,
    BUDGET,
    SEQ,
    WINDOW,
    bench_config,
    calib_batch,
    clone_model,
    emit,
    pretrain_corpus,
)


def test_fig4_schedule_search(base_state, benchmark):
    cfg = bench_config()
    model = clone_model(base_state)
    options = enumerate_layer_options((2, 4, 8), (0.0, 0.3, 0.5))
    profile = measure_sensitivity(
        model, *calib_batch(pretrain_corpus()), options, metric="loss_delta"
    )
    policy = search_policy(profile, cfg.num_layers, BUDGET, options=options)

    # A representative Edge-LLM iteration: exit at 6 of 8, window 2.
    gemms = tuning_iteration_workload(
        cfg, BATCH, SEQ,
        forward_blocks=6, grad_start=6 - WINDOW,
        bits_per_block=policy.bits_per_block(),
        sparsity_per_block=policy.sparsity_per_block(),
    )

    rows = []
    results = {}
    for strategy, kwargs in [
        ("heuristic", {}),
        ("random", {"n_samples": 30, "seed": 0}),
        ("evolutionary", {"seed": 0}),
        ("exhaustive", {}),
    ]:
        cost = schedule_workloads(gemms, EDGE_GPU_LIKE, strategy=strategy, **kwargs)
        results[strategy] = cost
        rows.append([
            strategy,
            cost.cycles / 1e6,
            cost.mean_utilization,
            cost.dram_bytes / 1e6,
            results["heuristic"].cycles / cost.cycles,
        ])

    emit(
        "fig4_scheduling",
        "R-F4: schedule search on the LUC-compressed adaptive workload",
        ["strategy", "Mcycles", "mean util", "DRAM MB", "speedup vs heuristic"],
        rows,
        metrics={
            "exhaustive_mcycles": results["exhaustive"].cycles / 1e6,
            "heuristic_mcycles": results["heuristic"].cycles / 1e6,
            "search_speedup_vs_heuristic": (
                results["heuristic"].cycles / results["exhaustive"].cycles
            ),
            "exhaustive_mean_utilization": results["exhaustive"].mean_utilization,
            "heuristic_mean_utilization": results["heuristic"].mean_utilization,
        },
        config={"policy_cost": policy.cost()},
    )

    assert results["exhaustive"].cycles <= results["random"].cycles
    assert results["exhaustive"].cycles <= results["evolutionary"].cycles
    assert results["exhaustive"].cycles < results["heuristic"].cycles
    assert results["exhaustive"].mean_utilization > results["heuristic"].mean_utilization

    # Benchmark the search itself (the cost that runs once per deployment).
    benchmark.pedantic(
        lambda: schedule_workloads(gemms, EDGE_GPU_LIKE, strategy="exhaustive"),
        rounds=3,
        iterations=1,
    )
