"""R-A3 — ablation: sensitivity metric driving the LUC policy search.

Same search (greedy, same budget, same options), different per-layer
sensitivity signals: calibration loss delta (default), label-free KL, and
the forward-free weight-reconstruction-error proxy.  Reported: policy
quality (post-compression perplexity) and profiling cost (forward passes).
"""

from repro.eval import model_perplexity
from repro.luc import (
    apply_luc,
    enumerate_layer_options,
    measure_sensitivity,
    search_policy,
)

from .common import bench_config, calib_batch, clone_model, emit, pretrain_corpus

LUC_BUDGET = 0.125
OPTIONS = enumerate_layer_options((2, 4, 8), (0.0, 0.3, 0.5))


def test_abl_sensitivity_metric(base_state, benchmark):
    cfg = bench_config()
    corpus = pretrain_corpus()
    inputs, targets = calib_batch(corpus)
    base_ppl = model_perplexity(clone_model(base_state), corpus, num_batches=3)

    # Forward passes per profile: blocks x options (+1 base) for model-
    # based metrics; zero for the weight proxy.
    n_model_passes = cfg.num_layers * len(OPTIONS) + 1

    rows = []
    results = {}
    for metric, passes in [
        ("loss_delta", n_model_passes),
        ("kl", n_model_passes),
        ("weight_error", 0),
    ]:
        model = clone_model(base_state)
        profile = measure_sensitivity(model, inputs, targets, OPTIONS, metric=metric)
        policy = search_policy(
            profile, cfg.num_layers, LUC_BUDGET, strategy="greedy", options=OPTIONS
        )
        apply_luc(model, policy)
        ppl = model_perplexity(model, corpus, num_batches=3)
        results[metric] = ppl
        rows.append([metric, passes, policy.cost(), ppl, ppl / base_ppl])

    emit(
        "abl_sensitivity",
        "R-A3: sensitivity-metric ablation for LUC (greedy search, "
        f"budget {LUC_BUDGET}, base ppl {base_ppl:.3f})",
        ["metric", "calib fwd passes", "policy cost", "ppl post-compress",
         "ppl ratio vs base"],
        rows,
        metrics={
            "base_ppl": base_ppl,
            "loss_delta_ppl": results["loss_delta"],
            "kl_ppl": results["kl"],
            "weight_error_ppl": results["weight_error"],
        },
        config={"luc_budget": LUC_BUDGET, "num_options": len(OPTIONS)},
    )

    # Model-based metrics must not lose to the forward-free proxy by much;
    # loss_delta is the default because it directly measures the objective.
    assert results["loss_delta"] <= results["weight_error"] * 1.10
    for ppl in results.values():
        assert ppl < base_ppl * 2.0  # every metric yields a usable policy

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
