"""EXT-E4 — extension: seed variance of the headline comparison.

Single-run tables can mislead; this bench repeats the core Edge-LLM vs
vanilla-tuning comparison over three data/init seeds (at a reduced step
budget) and reports mean ± std of adapted perplexity, confirming the
ordering is not a seed artifact.
"""

import numpy as np

from repro.adaptive import (
    AdaptiveLayerTrainer,
    AdaptiveTuningConfig,
    VotingCombiner,
    vanilla_trainer,
)
from repro.data import MarkovChainCorpus, lm_batches
from repro.eval import model_perplexity, perplexity

from .common import BATCH, EXIT_POINTS, SEQ, VOCAB, WINDOW, clone_model, emit

SEEDS = (0, 1, 2)
STEPS = 30


def _run_pair(base_state, data_seed):
    adapt = MarkovChainCorpus(vocab_size=VOCAB, order=1, seed=10 + data_seed)

    def batches(seed):
        return lm_batches(adapt, BATCH, SEQ, STEPS, np.random.default_rng(seed))

    vanilla_model = clone_model(base_state)
    vanilla_trainer(vanilla_model, lr=1e-3).train(batches(data_seed))
    vanilla_ppl = model_perplexity(vanilla_model, adapt, num_batches=3)

    edge_model = clone_model(base_state)
    trainer = AdaptiveLayerTrainer(
        edge_model,
        AdaptiveTuningConfig(window=WINDOW, exit_points=EXIT_POINTS, lr=2e-3,
                             seed=data_seed),
    )
    trainer.train(batches(data_seed))
    voter = VotingCombiner(edge_model, trainer.exit_heads)
    calib = next(lm_batches(adapt, 4, SEQ, 1, np.random.default_rng(99)))
    voter.calibrate(*calib)
    edge_ppl = perplexity(voter.combined_logits, adapt, num_batches=3)
    zero_shot = model_perplexity(clone_model(base_state), adapt, num_batches=3)
    return zero_shot, vanilla_ppl, edge_ppl


def test_ext_seed_variance(base_state, benchmark):
    zero, vanilla, edge = [], [], []
    for seed in SEEDS:
        z, v, e = _run_pair(base_state, seed)
        zero.append(z)
        vanilla.append(v)
        edge.append(e)

    def stats(xs):
        return float(np.mean(xs)), float(np.std(xs))

    rows = [
        ["no adaptation", *stats(zero)],
        [f"vanilla tuning ({STEPS} steps)", *stats(vanilla)],
        [f"Edge-LLM ({STEPS} steps, voted)", *stats(edge)],
    ]
    zero_mean, zero_std = stats(zero)
    vanilla_mean, vanilla_std = stats(vanilla)
    edge_mean, edge_std = stats(edge)
    emit(
        "ext_variance",
        f"EXT-E4: adapted perplexity over {len(SEEDS)} seeds (mean, std)",
        ["method", "ppl mean", "ppl std"],
        rows,
        metrics={
            "zero_shot_ppl_mean": zero_mean,
            "zero_shot_ppl_std": zero_std,
            "vanilla_ppl_mean": vanilla_mean,
            "vanilla_ppl_std": vanilla_std,
            "edge_llm_ppl_mean": edge_mean,
            "edge_llm_ppl_std": edge_std,
        },
        config={"seeds": list(SEEDS), "steps": STEPS},
    )

    # Ordering must hold per-seed, not just on average.
    for z, v, e in zip(zero, vanilla, edge):
        assert e < z / 5, "Edge-LLM must adapt on every seed"
        assert e < 5 * v, "Edge-LLM stays in vanilla's regime on every seed"

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
