"""R-EXT — train-step fast path: grad-free frozen blocks, eager tape
reclamation, fused kernels, and the flat-buffer optimizer step.

The adaptive trainer's speedup claim rests on the window-sized backward
pass.  This bench measures the *implementation* half of that story: the
fast path (no_grad prefix + ``backward(reclaim=True)`` + vectorized
optimizer) against the seed-era full-tape step on the same 8-block model
with a 2-block window, driven by an identical batch stream.

Three guarantees are asserted, not just reported:

* the fast path is >= 1.8x faster per iteration (median wall time),
* the loss trajectory is *bit-identical* to the full-tape baseline
  (the fast path is an optimization, not an approximation),
* eager reclamation lowers the peak of live tape + gradient bytes.

Micro rows compare the fused RMSNorm kernel against the composed op
chain and the flat Adam step against the per-parameter loop.
"""

import time

import numpy as np

from repro.adaptive import AdaptiveLayerTrainer, AdaptiveTuningConfig
from repro.nn import Adam, TransformerLM
from repro.nn.layers import RMSNorm
from repro.tensor import Tensor, fused_kernels

from .common import (
    ADAPT_STEPS,
    BATCH,
    DIM,
    SEQ,
    WINDOW,
    adapt_batches,
    bench_config,
    emit,
)

# Untied embeddings so the optimizer's window scope (blocks a window can
# train + final norm + unembedding) excludes the input embedding — the
# regime where full-tape and fast-path updates are provably identical.
CFG = bench_config(tie_embeddings=False)


def _make_model(state) -> TransformerLM:
    model = TransformerLM(CFG)
    model.load_state_dict(state)
    return model


def _make_trainer(model: TransformerLM, **overrides) -> AdaptiveLayerTrainer:
    config = AdaptiveTuningConfig(
        window=WINDOW,
        exit_points=[model.num_layers],
        schedule="round_robin",
        lr=1e-3,
        optimizer_scope="window",
        **overrides,
    )
    return AdaptiveLayerTrainer(model, config)


def _run(trainer: AdaptiveLayerTrainer, batches):
    losses, times, peaks, reclaimed = [], [], [], []
    for inputs, targets in batches:
        stats = trainer.train_step(inputs, targets)
        losses.append(stats.loss)
        times.append(stats.wall_time_s)
        peaks.append(stats.peak_tape_bytes)
        reclaimed.append(stats.reclaimed_bytes)
    return losses, times, peaks, reclaimed


def _median_after_warmup(times):
    return float(np.median(times[1:] if len(times) > 1 else times))


def _time_loop(fn, iters: int = 30) -> float:
    fn()  # warm-up
    start = time.perf_counter()
    for _ in range(iters):
        fn()
    return (time.perf_counter() - start) / iters


def _rmsnorm_step_time(enabled: bool) -> float:
    rng = np.random.default_rng(0)
    norm = RMSNorm(DIM)
    x_data = rng.standard_normal((BATCH, SEQ, DIM)).astype(np.float32)

    def step():
        with fused_kernels(enabled):
            x = Tensor(x_data, requires_grad=True)
            norm(x).sum().backward()
        norm.weight.grad = None

    return _time_loop(step)


def _adam_step_time(flat: bool) -> float:
    # Many small parameters (bias/norm-like): the regime where the
    # per-parameter python loop pays ~10 numpy dispatches per parameter
    # and the flat slab pays them once per step.
    rng = np.random.default_rng(0)
    params = [
        Tensor(rng.standard_normal(DIM).astype(np.float32),
               requires_grad=True)
        for _ in range(200)
    ]
    grads = [rng.standard_normal(DIM).astype(np.float32) for _ in range(200)]
    opt = Adam(params, lr=1e-3)
    opt.flat = flat

    def step():
        for p, g in zip(params, grads):
            p.grad = g
        opt.step()

    return _time_loop(step)


def test_ext_trainstep_fast_path(benchmark):
    state = TransformerLM(CFG).state_dict()
    batches = list(adapt_batches(ADAPT_STEPS))

    fast = _make_trainer(_make_model(state))
    full = _make_trainer(
        _make_model(state),
        fast_path=False, eager_reclaim=False, flat_optimizer=False,
    )
    no_reclaim = _make_trainer(_make_model(state), eager_reclaim=False)

    losses_full, times_full, peaks_full, _ = _run(full, batches)
    losses_fast, times_fast, peaks_fast, reclaimed = _run(fast, batches)
    _, _, peaks_noreclaim, _ = _run(no_reclaim, batches[:4])

    t_full = _median_after_warmup(times_full)
    t_fast = _median_after_warmup(times_fast)
    speedup = t_full / t_fast
    trajectory_identical = losses_fast == losses_full

    peak_full = float(np.median(peaks_full))
    peak_fast = float(np.median(peaks_fast))
    peak_noreclaim = float(np.median(peaks_noreclaim))

    rmsnorm_composed = _rmsnorm_step_time(enabled=False)
    rmsnorm_fused = _rmsnorm_step_time(enabled=True)
    adam_loop = _adam_step_time(flat=False)
    adam_flat = _adam_step_time(flat=True)

    mb = 1.0 / (1024 * 1024)
    rows = [
        ["full-tape step (baseline)", t_full * 1e3, 1.0],
        ["fast-path step (no_grad prefix + reclaim + flat)",
         t_fast * 1e3, speedup],
        ["peak tape+grad MiB, full tape", peak_full * mb, 1.0],
        ["peak tape+grad MiB, fast path no reclaim", peak_noreclaim * mb,
         peak_full / peak_noreclaim],
        ["peak tape+grad MiB, fast path + reclaim", peak_fast * mb,
         peak_full / peak_fast],
        ["rms_norm fwd+bwd ms, composed ops", rmsnorm_composed * 1e3, 1.0],
        ["rms_norm fwd+bwd ms, fused kernel", rmsnorm_fused * 1e3,
         rmsnorm_composed / rmsnorm_fused],
        ["adam step ms (200 params), per-param loop", adam_loop * 1e3, 1.0],
        ["adam step ms (200 params), flat slab", adam_flat * 1e3,
         adam_loop / adam_flat],
    ]

    emit(
        "ext_trainstep",
        "R-EXT: train-step fast path vs full-tape baseline\n"
        "(8-block model, 2-block window; loss trajectories bit-identical)",
        ["configuration", "value", "ratio vs baseline"],
        rows,
        metrics={
            "speedup_vs_full_tape": speedup,
            "trajectory_identical": int(trajectory_identical),
            "peak_tape_bytes_full": peak_full,
            "peak_tape_bytes_no_reclaim": peak_noreclaim,
            "peak_tape_bytes_fast": peak_fast,
            "peak_reduction_vs_full": peak_full / peak_fast,
            "reclaim_reduction": peak_noreclaim / peak_fast,
            "reclaimed_bytes_per_step": float(np.median(reclaimed)),
            "fused_rmsnorm_speedup": rmsnorm_composed / rmsnorm_fused,
            "flat_adam_speedup": adam_loop / adam_flat,
            "final_loss": losses_fast[-1],
        },
        config={"tie_embeddings": False, "optimizer_scope": "window"},
    )

    assert trajectory_identical, (
        "fast-path losses diverged from the full-tape baseline"
    )
    assert speedup >= 1.8, f"fast-path speedup {speedup:.2f}x < 1.8x"
    assert peak_fast < peak_noreclaim, (
        "eager reclamation did not lower the live-bytes peak"
    )
    assert float(np.median(reclaimed)) > 0

    def one_step():
        inputs, targets = batches[fast.iteration % len(batches)]
        fast.train_step(inputs, targets)

    benchmark(one_step)
