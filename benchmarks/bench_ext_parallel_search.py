"""EXT — parallel + memoized search engine: wall-time improvement.

Times the two expensive searches of the pipeline — LUC sensitivity
profiling + policy search, and HW schedule search over a full tuning
iteration — in two configurations:

* ``serial cold``: ``workers=1``, empty cache (the pre-PR behaviour);
* ``workers=4 warm``: ``workers=4`` with a warm persistent
  :class:`repro.parallel.EvalCache` (the steady state of repeated runs —
  re-profiling after a code tweak, sweeping budgets over one profile,
  re-scheduling unchanged workloads).

This container exposes a single CPU core, so the headline win is the
memoization path; the worker pool is exercised for correctness and its
overhead is visible in the ``workers=4 cold`` row.  The assertion is the
issue's acceptance bar: warm runs at ``--workers 4`` must be >= 2x faster
than serial cold for both searches.
"""

import time

from repro.hw import EDGE_GPU_LIKE, schedule_workloads, tuning_iteration_workload
from repro.luc import LayerCompression, measure_sensitivity
from repro.luc.search import search_policy
from repro.nn import TransformerLM
from repro.parallel import EvalCache

from .common import BATCH, BUDGET, LAYERS, SEQ, adapt_corpus, bench_config, calib_batch, emit

OPTIONS = [
    LayerCompression(8, 0.0),
    LayerCompression(8, 0.3),
    LayerCompression(4, 0.0),
    LayerCompression(4, 0.5),
    LayerCompression(2, 0.3),
    LayerCompression(2, 0.5),
]


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _luc_search(workers, cache):
    """Sensitivity profiling + evolutionary policy search (one compress)."""
    model = TransformerLM(bench_config())
    inputs, targets = calib_batch(adapt_corpus())
    profile = measure_sensitivity(
        model, inputs, targets, OPTIONS, metric="loss_delta",
        workers=workers, cache=cache,
    )
    return search_policy(
        profile, LAYERS, BUDGET, strategy="evolutionary", options=OPTIONS,
        population=16, generations=8, seed=0, workers=workers, cache=cache,
    )


def _hw_search(workers, cache):
    """Exhaustive schedule search over one full tuning iteration."""
    gemms = tuning_iteration_workload(
        bench_config(), batch=BATCH, seq=SEQ, forward_blocks=LAYERS,
        grad_start=LAYERS - 2,
    )
    return schedule_workloads(
        gemms, EDGE_GPU_LIKE, strategy="exhaustive", workers=workers,
        cache=cache,
    )


def test_ext_parallel_search(tmp_path, benchmark):
    cases = {"luc policy search": _luc_search, "hw schedule search": _hw_search}
    rows, metrics = [], {}
    results = {}

    for name, run in cases.items():
        slug = name.split()[0]
        cache_dir = str(tmp_path / slug)
        cold_result, cold_s = _timed(lambda: run(1, None))
        # Populate the persistent cache, then time the steady state.
        warm_cache = EvalCache(cache_dir)
        run(4, warm_cache)
        warm_cache = EvalCache(cache_dir)
        warm_result, warm_s = _timed(lambda: run(4, warm_cache))
        speedup = cold_s / warm_s
        results[name] = (cold_result, warm_result)

        rows.append([name, "serial cold", 1, round(cold_s, 4), 1.0])
        rows.append([name, "workers=4 warm", 4, round(warm_s, 4),
                     round(speedup, 2)])
        metrics[f"{slug}_cold_s"] = cold_s
        metrics[f"{slug}_warm_s"] = warm_s
        metrics[f"{slug}_warm_speedup"] = speedup
        metrics[f"{slug}_warm_hit_rate"] = warm_cache.hit_rate

    emit(
        "ext_parallel_search",
        "EXT: search wall-time, serial cold vs workers=4 with warm "
        "persistent cache",
        ["search", "mode", "workers", "seconds", "speedup"],
        rows,
        metrics=metrics,
        config={
            "options": len(OPTIONS),
            "luc_strategy": "evolutionary",
            "hw_strategy": "exhaustive",
            "cpu_note": "single-core container; warm-cache path is the win",
        },
    )

    # Parallel/memoized results must be the serial results, exactly.
    luc_cold, luc_warm = results["luc policy search"]
    assert luc_cold.layers == luc_warm.layers
    hw_cold, hw_warm = results["hw schedule search"]
    assert [s.schedule for s in hw_cold.scheduled] == [
        s.schedule for s in hw_warm.scheduled
    ]
    assert hw_cold.cycles == hw_warm.cycles

    # Acceptance bar: >= 2x for both searches at --workers 4 (warm cache).
    assert metrics["luc_warm_speedup"] >= 2.0
    assert metrics["hw_warm_speedup"] >= 2.0

    benchmark.pedantic(
        lambda: _hw_search(4, EvalCache(str(tmp_path / "hw"))),
        rounds=3,
        iterations=1,
    )
