"""R-T2 — LUC vs uniform compression at matched compute budget.

The paper's claim for component #1: layer-wise (sensitivity-driven)
pruning ratios and bit-widths beat a uniform assignment of the same
average budget.  Evaluated in the aggressive-compression regime (cost
~0.125 = 8x reduction) where the allocation actually matters; rows give
perplexity immediately after compression (pre-tuning) and after a short
recovery tuning run.
"""

import numpy as np

from repro.adaptive import vanilla_trainer
from repro.data import lm_batches
from repro.eval import model_perplexity
from repro.luc import (
    LUCPolicy,
    apply_luc,
    enumerate_layer_options,
    measure_sensitivity,
    search_policy,
)

from .common import bench_config, calib_batch, clone_model, emit, pretrain_corpus

LUC_BUDGET = 0.125  # 8x compute reduction; uniform equivalents exist at
                    # exactly this cost (2-bit dense, 4-bit + 50% prune)
RECOVERY_STEPS = 25


def _evaluate_policy(base_state, policy, corpus):
    model = clone_model(base_state)
    apply_luc(model, policy)
    ppl_post = model_perplexity(model, corpus, num_batches=3)
    trainer = vanilla_trainer(model, lr=1e-3)
    trainer.train(
        lm_batches(corpus, 8, 32, RECOVERY_STEPS, np.random.default_rng(3))
    )
    ppl_recovered = model_perplexity(model, corpus, num_batches=3)
    return ppl_post, ppl_recovered


def test_table2_luc_vs_uniform(base_state, benchmark):
    cfg = bench_config()
    corpus = pretrain_corpus()
    base_ppl = model_perplexity(clone_model(base_state), corpus, num_batches=3)

    options = enumerate_layer_options((2, 4, 8), (0.0, 0.3, 0.5))
    profile = measure_sensitivity(
        clone_model(base_state), *calib_batch(corpus), options, metric="loss_delta"
    )
    luc_policy = search_policy(
        profile, cfg.num_layers, LUC_BUDGET, strategy="greedy", options=options
    )

    # Uniform policies at exactly the same cost (0.125).
    uniform_2bit = LUCPolicy.uniform(cfg.num_layers, 2, 0.0)
    uniform_4bit_50 = LUCPolicy.uniform(cfg.num_layers, 4, 0.5)

    rows = [["uncompressed", 1.0, base_ppl, base_ppl]]
    results = {}
    for name, policy in [
        (f"LUC greedy (budget {LUC_BUDGET})", luc_policy),
        ("uniform 2-bit dense", uniform_2bit),
        ("uniform 4-bit + 50% prune", uniform_4bit_50),
    ]:
        post, recovered = _evaluate_policy(base_state, policy, corpus)
        rows.append([name, policy.cost(), post, recovered])
        results[name] = (policy.cost(), post, recovered)

    luc_cost, luc_post, luc_rec = results[f"LUC greedy (budget {LUC_BUDGET})"]
    emit(
        "table2_luc",
        "R-T2: layer-wise (LUC) vs uniform compression at matched budget\n"
        "(perplexity on the pretraining language; recovery = "
        f"{RECOVERY_STEPS} tuning steps)",
        ["policy", "rel. cost", "ppl post-compress", "ppl after recovery"],
        rows,
        metrics={
            "base_ppl": base_ppl,
            "luc_cost": luc_cost,
            "luc_ppl_post": luc_post,
            "luc_ppl_recovered": luc_rec,
            "uniform_2bit_ppl_post": results["uniform 2-bit dense"][1],
            "uniform_4bit_prune_ppl_post": results["uniform 4-bit + 50% prune"][1],
        },
        config={"luc_budget": LUC_BUDGET, "recovery_steps": RECOVERY_STEPS},
    )
    assert luc_cost <= LUC_BUDGET + 1e-9
    # LUC beats both matched-cost uniform assignments before tuning...
    for name in ("uniform 2-bit dense", "uniform 4-bit + 50% prune"):
        assert luc_post < results[name][1]
    # ...and stays at least as good after recovery tuning.
    assert luc_rec <= min(results[n][2] for n in results) * 1.1

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
