"""EXT — tensor-parallel GEMM sharding under the serving scheduler.

Two runs of the same continuous-batching workload (greedy and sampled
requests mixed, per-request RNG streams) from identical weights:

* ``TP=1`` — the canonical chunked kernels in one process (the bitwise
  anchor: the same arithmetic the sharded run distributes);
* ``TP=2`` — q/k/v/o and gate/up/down sharded over a process group;
  the driver is rank 0 and computes its own span while worker receives
  overlap it.

Emitted metrics:

* ``tokens_identical`` — the TP=2 run emits exactly the TP=1 tokens,
  greedy and sampled alike (asserted here, at any CPU count);
* ``decode_speedup`` — TP=2 serving throughput over TP=1.  Not
  asserted locally (this container may expose one core); CI enforces
  the >= 1.3x bar via ``validate_results --min-metric`` on multi-core
  runners with BLAS threading pinned to 1;
* ``overlap_fraction`` — fraction of fan-out wall time hidden behind
  rank-0 compute (the ``dist/overlap_fraction`` gauge).

The model is deliberately wider than the shared bench model so each
rank's GEMM span dominates the ~50us per-boundary IPC round trip.
"""

import time

import numpy as np

from repro.dist import tp_enable
from repro.nn import TransformerConfig, TransformerLM
from repro.obs import use_registry
from repro.serve import CachePool, Request, Scheduler, SchedulerConfig
from repro.serve import GenerationEngine

from .common import emit

DIM = 640
LAYERS = 4
HEADS = 8
VOCAB = 64
MAX_LEN = 64
PROMPT_LEN = 8
MAX_NEW = 24
REQUESTS = 16
WARMUP_NEW = 2


def tp_config() -> TransformerConfig:
    return TransformerConfig(
        vocab_size=VOCAB, dim=DIM, num_layers=LAYERS, num_heads=HEADS,
        max_len=MAX_LEN, seed=0,
    )


def make_model(state=None) -> TransformerLM:
    model = TransformerLM(tp_config())
    if state is not None:
        model.load_state_dict(state)
    return model


def make_requests(max_new=MAX_NEW):
    """Half greedy, half sampled — sampled requests pin their own RNG
    stream via ``seed``, which the TP group keeps on the head shard."""
    rng = np.random.default_rng(5)
    out = []
    for i in range(REQUESTS):
        prompt = [int(t) for t in rng.integers(0, VOCAB, PROMPT_LEN)]
        sampled = i % 2 == 1
        out.append(Request(
            f"r{i}", prompt=prompt, max_new_tokens=max_new,
            greedy=not sampled, temperature=0.8, top_k=8, seed=40 + i,
        ))
    return out


def run_serving(state, tp, group):
    """Serve the workload at the given TP degree; returns tokens,
    decode-phase throughput, and the group's overlap accounting.

    The first scheduler step admits every request (sequential
    per-request prefill); all later steps are pure batched decode.
    Decode throughput is timed over those later steps — the steady
    state the >= 1.3x bar is about — so both runs pay the identical
    (and identically serial) admission cost outside the clock.
    """
    model = make_model(state)
    with use_registry() as reg:
        with tp_enable(model, tp, group=group) as tp_state:
            engine = GenerationEngine(model, graph_capture=False)

            def serve(requests):
                pool = CachePool(
                    model.num_layers,
                    sum(r.reserved_tokens for r in requests),
                )
                scheduler = Scheduler(
                    engine, pool,
                    SchedulerConfig(max_batch_size=REQUESTS, max_steps=500),
                )
                for r in requests:
                    scheduler.submit(r)
                scheduler.step()  # admission + prefill, untimed
                prefill_tokens = sum(
                    len(a.tokens) for a in scheduler._active
                ) + sum(len(r.tokens) for r in scheduler._results)
                start = time.perf_counter()
                results = scheduler.run()
                wall = time.perf_counter() - start
                tokens = {r.request_id: r.tokens for r in results}
                decoded = sum(len(t) for t in tokens.values()) - prefill_tokens
                return tokens, decoded, wall

            serve(make_requests(max_new=WARMUP_NEW))  # warmup
            tokens, decoded, wall = serve(make_requests())
            group_active = tp_state.group is not None
            overlap = (
                tp_state.group.overlap_fraction if group_active else 0.0
            )
        fallbacks = reg.counter("dist/fallbacks").value
    return {
        "tokens": tokens,
        "tokens_per_s": decoded / wall,
        "wall_s": wall,
        "group_active": group_active,
        "overlap_fraction": overlap,
        "fallbacks": fallbacks,
    }


def test_ext_tensor_parallel():
    state = make_model().state_dict()

    base = run_serving(state, tp=1, group=False)
    sharded = run_serving(state, tp=2, group=True)

    tokens_identical = base["tokens"] == sharded["tokens"]
    speedup = sharded["tokens_per_s"] / base["tokens_per_s"]

    rows = [
        ["TP=1 (canonical, one process)", round(base["wall_s"], 4),
         round(base["tokens_per_s"], 2), 1.0, "-"],
        ["TP=2 (process group)", round(sharded["wall_s"], 4),
         round(sharded["tokens_per_s"], 2), round(speedup, 3),
         round(sharded["overlap_fraction"], 3)],
    ]
    metrics = {
        "decode_speedup": speedup,
        "tokens_identical": int(tokens_identical),
        "group_active": int(sharded["group_active"]),
        "overlap_fraction": sharded["overlap_fraction"],
        "base_tokens_per_s": base["tokens_per_s"],
        "tp2_tokens_per_s": sharded["tokens_per_s"],
        "tp2_fallbacks": sharded["fallbacks"],
    }
    emit(
        "ext_tensor_parallel",
        "EXT: TP=2 sharded serving vs one process (bitwise tokens, "
        "decode throughput, comm/compute overlap)",
        ["configuration", "wall s", "tokens/s", "speedup",
         "overlap fraction"],
        rows,
        metrics=metrics,
        config={
            "dim": DIM, "layers": LAYERS, "requests": REQUESTS,
            "prompt_len": PROMPT_LEN, "max_new_tokens": MAX_NEW,
        },
    )

    # Bitwise contract holds at any core count — always asserted.
    assert tokens_identical, "TP=2 tokens diverged from TP=1 run"
    assert sharded["group_active"], "TP process group failed to start"
    assert sharded["fallbacks"] == 0, "TP group fell back mid-run"
    # decode_speedup and overlap are enforced in CI (multi-core, BLAS
    # pinned), not here.
