"""EXT — pipeline-parallel sharded tuning and serving (repro.dist).

Three runs of the same adaptation workload from identical initial
weights:

* ``1 shard, 1 micro``  — the plain single-process trainer (throughput
  baseline);
* ``1 shard, M micro``  — in-process micro-batched reference (the
  bitwise anchor for the pipeline);
* ``2 shards, M micro`` — persistent-worker 1F1B pipeline.

Emitted metrics:

* ``losses_identical`` / ``weights_identical`` — the 2-shard pipeline
  reproduces the 1-shard micro-batched trajectory bit for bit (asserted
  here, at any CPU count);
* ``tokens_identical`` — sharded greedy serving emits exactly
  ``TransformerLM.generate``'s tokens (asserted here);
* ``memory_shrink`` — single-process param+optimizer bytes over the
  largest stage's share (~S for balanced plans; asserted >= 1.6);
* ``tuning_speedup`` — 2-shard pipeline step throughput over the
  single-process baseline.  Not asserted locally (this container may
  expose one core); CI enforces the >= 1.3x bar via
  ``validate_results --min-metric`` on multi-core runners with BLAS
  threading pinned to 1.
"""

import time

import numpy as np

from repro.adaptive import AdaptiveTuningConfig
from repro.data import MarkovChainCorpus, lm_batches
from repro.dist import DistConfig, PipelineAdaptiveTrainer, PipelineGenerationEngine
from repro.nn import TransformerConfig, TransformerLM

from .common import ADAPT_SEED, emit

# Wider and longer than the shared bench model so per-stage compute
# dominates the activation hand-off (micro x seq x dim floats per
# boundary per micro-batch).
DIM = 256
LAYERS = 8
VOCAB = 64
BATCH = 16
SEQ = 64
MICRO = 2
WARMUP = 2
TIMED_STEPS = 8
MAX_NEW = 8


def pipe_config() -> TransformerConfig:
    return TransformerConfig(
        vocab_size=VOCAB, dim=DIM, num_layers=LAYERS, num_heads=4,
        max_len=128, seed=0,
    )


def make_model(state=None) -> TransformerLM:
    model = TransformerLM(pipe_config())
    if state is not None:
        model.load_state_dict(state)
    return model


def tuning_config() -> AdaptiveTuningConfig:
    # Full-depth windows keep every stage in the backward path, the
    # steady-state regime the 1F1B schedule is built for.
    return AdaptiveTuningConfig(
        window=LAYERS, exit_points=[LAYERS], schedule="full", lr=1e-3,
        seed=0,
    )


def run_tuning(state, data, shards, micro, serial=False):
    """Train over ``data``; returns (losses, per-step seconds, trainer
    artifacts) with the first WARMUP steps excluded from timing."""
    model = make_model(state)
    dist = DistConfig(shards=shards, micro_batches=micro, serial=serial)
    losses, times = [], []
    with PipelineAdaptiveTrainer(model, tuning_config(), dist) as trainer:
        backend = trainer.runner.backend
        for step, (inputs, targets) in enumerate(data):
            start = time.perf_counter()
            stats = trainer.train_step(inputs, targets)
            elapsed = time.perf_counter() - start
            losses.append(stats.loss)
            if step >= WARMUP:
                times.append(elapsed)
        stage_mem = trainer.stage_memory_report()
        trainer.sync_model()
    return {
        "losses": losses,
        "median_step_s": float(np.median(times)),
        "stage_mem": stage_mem,
        "state": model.state_dict(),
        "backend": backend,
    }


def states_equal(a, b) -> bool:
    return a.keys() == b.keys() and all(
        np.array_equal(a[k], b[k]) for k in a
    )


def serving_tokens_match(state) -> bool:
    model = make_model(state)
    corpus = MarkovChainCorpus(vocab_size=VOCAB, order=1, seed=ADAPT_SEED)
    rng = np.random.default_rng(7)
    prompts = []
    for length in (5, 9, 13):
        inputs, _ = next(lm_batches(corpus, 1, length, 1, rng))
        prompts.append([int(t) for t in inputs[0]])
    expected = [model.generate(p, MAX_NEW, greedy=True) for p in prompts]
    with PipelineGenerationEngine(model, DistConfig(shards=2)) as engine:
        got = engine.generate_batch(prompts, MAX_NEW)
    return got == expected


def test_ext_pipeline():
    state = make_model().state_dict()
    corpus = MarkovChainCorpus(vocab_size=VOCAB, order=1, seed=ADAPT_SEED)
    data = list(lm_batches(
        corpus, BATCH, SEQ, WARMUP + TIMED_STEPS, np.random.default_rng(0)
    ))

    base = run_tuning(state, data, shards=1, micro=1)
    ref = run_tuning(state, data, shards=1, micro=MICRO)
    pipe = run_tuning(state, data, shards=2, micro=MICRO)

    losses_identical = ref["losses"] == pipe["losses"]
    weights_identical = states_equal(ref["state"], pipe["state"])
    tokens_identical = serving_tokens_match(state)
    speedup = base["median_step_s"] / pipe["median_step_s"]

    single_bytes = sum(
        r["param_bytes"] + r["optimizer_bytes"] for r in base["stage_mem"]
    )
    worst_stage = max(
        r["param_bytes"] + r["optimizer_bytes"] for r in pipe["stage_mem"]
    )
    memory_shrink = single_bytes / worst_stage

    rows = [
        ["1 shard, 1 micro", base["backend"],
         round(base["median_step_s"], 4), 1.0, single_bytes],
        [f"1 shard, {MICRO} micro", ref["backend"],
         round(ref["median_step_s"], 4),
         round(base["median_step_s"] / ref["median_step_s"], 3),
         single_bytes],
        [f"2 shards, {MICRO} micro", pipe["backend"],
         round(pipe["median_step_s"], 4), round(speedup, 3), worst_stage],
    ]
    metrics = {
        "tuning_speedup": speedup,
        "losses_identical": int(losses_identical),
        "weights_identical": int(weights_identical),
        "tokens_identical": int(tokens_identical),
        "memory_shrink": memory_shrink,
        "base_step_s": base["median_step_s"],
        "pipeline_step_s": pipe["median_step_s"],
        "pipeline_backend": pipe["backend"],
    }
    emit(
        "ext_pipeline",
        "EXT: 2-stage pipeline tuning vs single process (bitwise "
        "trajectory, per-process memory, throughput)",
        ["configuration", "backend", "median step s", "speedup",
         "worst-process bytes"],
        rows,
        metrics=metrics,
        config={
            "dim": DIM, "layers": LAYERS, "micro_batches": MICRO,
            "timed_steps": TIMED_STEPS, "window": "full-depth",
        },
    )

    # Bitwise contract holds at any core count — always asserted.
    assert losses_identical, "pipeline losses diverged from 1-shard run"
    assert weights_identical, "pipeline weights diverged from 1-shard run"
    assert tokens_identical, "sharded serving diverged from generate()"
    assert pipe["backend"] == "process", "process backend unavailable"
    # Balanced 2-stage plans roughly halve per-process state.
    assert memory_shrink >= 1.6
    # tuning_speedup is enforced in CI (multi-core, BLAS pinned), not here.
