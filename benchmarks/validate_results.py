"""Validate benchmark JSON sidecars against the sidecar schema.

Usage (from the repo root, as CI does)::

    PYTHONPATH=src python -m benchmarks.validate_results benchmarks/results \
        --expect fig3_speedup fig2_memory \
        --min-metric ext_trainstep:speedup_vs_full_tape:1.8

Checks, all of which must pass for a zero exit status:

* every ``*.json`` sidecar parses and matches the sidecar schema,
* the ``bench`` name inside each sidecar matches its filename stem,
* every sidecar is *paired*: ``<name>.json`` has a ``<name>.txt`` table
  next to it and vice versa (a missing half means a bench wrote one
  output format and crashed, or a stale file survived a rename),
* every ``--expect NAME`` has a sidecar,
* every ``--min-metric BENCH:METRIC:THRESHOLD`` bar holds (repeatable;
  the bench must exist as ``benchmarks/bench_<BENCH>.py`` — a stale
  sidecar left behind by a renamed bench must not satisfy a bar — and
  the metric must exist, be numeric, and be >= the threshold).
"""

import argparse
import glob
import json
import os
import sys
from typing import List, Optional, Tuple

from .common import validate_sidecar


def check_pairing(directory: str) -> List[str]:
    """Every result must exist as a .json/.txt pair, not half of one."""
    errors = []
    stems = {}
    for path in glob.glob(os.path.join(directory, "*")):
        stem, ext = os.path.splitext(os.path.basename(path))
        if ext in (".json", ".txt"):
            stems.setdefault(stem, set()).add(ext)
    for stem in sorted(stems):
        missing = {".json", ".txt"} - stems[stem]
        for ext in sorted(missing):
            have = next(iter(stems[stem]))
            errors.append(
                f"{directory}: {stem}{have} has no paired {stem}{ext}"
            )
    return errors


def known_bench_names(bench_dir: Optional[str] = None) -> set:
    """Bench names that actually exist as ``bench_<name>.py`` modules."""
    bench_dir = bench_dir or os.path.dirname(os.path.abspath(__file__))
    return {
        os.path.splitext(os.path.basename(path))[0][len("bench_"):]
        for path in glob.glob(os.path.join(bench_dir, "bench_*.py"))
    }


def parse_min_metric(spec: str) -> Tuple[str, str, float]:
    """Parse a ``BENCH:METRIC:THRESHOLD`` bar specification."""
    parts = spec.split(":")
    if len(parts) != 3:
        raise ValueError(
            f"--min-metric {spec!r} is not BENCH:METRIC:THRESHOLD"
        )
    bench, metric, threshold = parts
    try:
        return bench, metric, float(threshold)
    except ValueError:
        raise ValueError(
            f"--min-metric {spec!r}: threshold {threshold!r} is not a number"
        ) from None


def check_min_metrics(
    payloads, specs: List[str], known: Optional[set] = None
) -> List[str]:
    """Enforce ``--min-metric`` bars against the loaded sidecars.

    ``known`` is the set of bench names that exist as modules; a bar
    naming anything else is an error even if a (stale) sidecar matches.
    """
    errors = []
    by_bench = {p["bench"]: p for p in payloads}
    for spec in specs:
        try:
            bench, metric, threshold = parse_min_metric(spec)
        except ValueError as exc:
            errors.append(str(exc))
            continue
        if known is not None and bench not in known:
            errors.append(
                f"--min-metric {spec}: unknown benchmark {bench!r} "
                f"(no benchmarks/bench_{bench}.py; stale sidecars do not "
                "satisfy bars)"
            )
            continue
        payload = by_bench.get(bench)
        if payload is None:
            errors.append(f"--min-metric {spec}: no sidecar for bench {bench!r}")
            continue
        if metric not in payload["metrics"]:
            errors.append(
                f"--min-metric {spec}: bench {bench!r} has no metric "
                f"{metric!r}"
            )
            continue
        value = payload["metrics"][metric]
        if not isinstance(value, (int, float)):
            errors.append(
                f"--min-metric {spec}: metric value {value!r} is not numeric"
            )
            continue
        if value < threshold:
            errors.append(
                f"--min-metric {spec}: {bench}:{metric} = {value} < "
                f"{threshold}"
            )
        else:
            print(f"ok --min-metric {spec}: {value}")
    return errors


def validate_directory(
    directory: str,
    expect: Optional[List[str]] = None,
    min_metrics: Optional[List[str]] = None,
) -> List[str]:
    """Validate every ``*.json`` sidecar in ``directory``; return errors."""
    errors: List[str] = []
    paths = sorted(glob.glob(os.path.join(directory, "*.json")))
    seen = set()
    payloads = []
    for path in paths:
        try:
            with open(path) as fh:
                payload = json.load(fh)
            validate_sidecar(payload)
        except (ValueError, json.JSONDecodeError) as exc:
            errors.append(f"{path}: {exc}")
            continue
        name = payload["bench"]
        seen.add(name)
        payloads.append(payload)
        stem = os.path.splitext(os.path.basename(path))[0]
        if name != stem:
            errors.append(f"{path}: bench name {name!r} != filename stem {stem!r}")
        print(
            f"ok {path}: {len(payload['rows'])} rows, "
            f"{len(payload['metrics'])} metrics"
        )
    errors.extend(check_pairing(directory))
    for name in expect or []:
        if name not in seen:
            errors.append(f"{directory}: expected bench {name!r} has no sidecar")
    errors.extend(
        check_min_metrics(payloads, min_metrics or [], known=known_bench_names())
    )
    if not paths:
        errors.append(f"{directory}: no sidecars found")
    return errors


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("directory", help="directory holding *.json sidecars")
    parser.add_argument(
        "--expect", nargs="*", default=None,
        help="bench names that must be present",
    )
    parser.add_argument(
        "--min-metric", action="append", default=[], metavar="B:M:T",
        help="require sidecar metric M of bench B to be >= T (repeatable)",
    )
    args = parser.parse_args(argv)
    errors = validate_directory(
        args.directory, expect=args.expect, min_metrics=args.min_metric
    )
    for error in errors:
        print(f"ERROR {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
