"""Validate benchmark JSON sidecars against the sidecar schema.

Usage (from the repo root, as CI does)::

    PYTHONPATH=src python -m benchmarks.validate_results benchmarks/results \
        --expect fig3_speedup fig2_memory

Exits non-zero if any sidecar is malformed or an expected bench is
missing, so it can gate the benchmark-smoke CI job.
"""

import argparse
import glob
import json
import os
import sys
from typing import List, Optional

from .common import validate_sidecar


def validate_directory(
    directory: str, expect: Optional[List[str]] = None
) -> List[str]:
    """Validate every ``*.json`` sidecar in ``directory``; return errors."""
    errors: List[str] = []
    paths = sorted(glob.glob(os.path.join(directory, "*.json")))
    seen = set()
    for path in paths:
        try:
            with open(path) as fh:
                payload = json.load(fh)
            validate_sidecar(payload)
        except (ValueError, json.JSONDecodeError) as exc:
            errors.append(f"{path}: {exc}")
            continue
        name = payload["bench"]
        seen.add(name)
        stem = os.path.splitext(os.path.basename(path))[0]
        if name != stem:
            errors.append(f"{path}: bench name {name!r} != filename stem {stem!r}")
        print(
            f"ok {path}: {len(payload['rows'])} rows, "
            f"{len(payload['metrics'])} metrics"
        )
    for name in expect or []:
        if name not in seen:
            errors.append(f"{directory}: expected bench {name!r} has no sidecar")
    if not paths:
        errors.append(f"{directory}: no sidecars found")
    return errors


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("directory", help="directory holding *.json sidecars")
    parser.add_argument(
        "--expect", nargs="*", default=None,
        help="bench names that must be present",
    )
    args = parser.parse_args(argv)
    errors = validate_directory(args.directory, expect=args.expect)
    for error in errors:
        print(f"ERROR {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
