"""R-F3 — the headline figure: per-iteration training speedup.

Paper claim (abstract): Edge-LLM achieves a **2.92x speedup per training
iteration** over vanilla tuning at comparable accuracy.  Two measurements:

1. *Modeled*: one tuning iteration priced on the edge-accelerator cost
   model for each cumulative configuration (vanilla -> +LUC -> +adaptive
   layer tuning -> +schedule search).  Two vanilla references are shown:
   a naive heuristic schedule and a fully searched schedule (the strong
   baseline, comparable to a vendor-tuned library).
2. *Wall-clock*: real numpy train-step latency of the adaptive trainer vs
   the vanilla full-depth trainer — the honest end-to-end analogue of the
   paper's measured 2.92x.
"""

import time

import numpy as np

from repro.adaptive import AdaptiveLayerTrainer, AdaptiveTuningConfig, vanilla_trainer
from repro.hw import EDGE_GPU_LIKE, schedule_workloads, tuning_iteration_workload
from repro.luc import enumerate_layer_options, measure_sensitivity, search_policy

from .common import (
    BATCH,
    BUDGET,
    EXIT_POINTS,
    SEQ,
    WINDOW,
    adapt_batches,
    bench_config,
    calib_batch,
    clone_model,
    emit,
    pretrain_corpus,
)


def _mean_adaptive_cycles(cfg, bits, sparsity, strategy):
    """Average modeled cycles over the exit cycle."""
    totals = []
    for exit_point in EXIT_POINTS:
        gemms = tuning_iteration_workload(
            cfg,
            BATCH,
            SEQ,
            forward_blocks=exit_point,
            grad_start=max(exit_point - WINDOW, 0),
            bits_per_block=bits,
            sparsity_per_block=sparsity,
        )
        totals.append(schedule_workloads(gemms, EDGE_GPU_LIKE, strategy=strategy))
    return float(np.mean([c.cycles for c in totals]))


def _wallclock(trainer, batches, steps=12):
    """Median per-step latency (median resists transient machine load)."""
    it = iter(batches)
    trainer.train_step(*next(it))  # warm-up
    times = []
    for done, (inputs, targets) in enumerate(it):
        start = time.perf_counter()
        trainer.train_step(inputs, targets)
        times.append(time.perf_counter() - start)
        if done + 1 >= steps:
            break
    return float(np.median(times))


def test_fig3_iteration_speedup(base_state, benchmark):
    cfg = bench_config()
    model = clone_model(base_state)

    # LUC policy from real sensitivities.
    options = enumerate_layer_options((2, 4, 8), (0.0, 0.3, 0.5))
    profile = measure_sensitivity(
        model, *calib_batch(pretrain_corpus()), options, metric="loss_delta"
    )
    policy = search_policy(profile, cfg.num_layers, BUDGET, options=options)
    bits = policy.bits_per_block()
    sparsity = policy.sparsity_per_block()

    full = tuning_iteration_workload(cfg, BATCH, SEQ, cfg.num_layers, 0)
    vanilla_naive = schedule_workloads(full, EDGE_GPU_LIKE, strategy="heuristic").cycles
    vanilla_tuned = schedule_workloads(full, EDGE_GPU_LIKE, strategy="exhaustive").cycles

    luc_cycles = schedule_workloads(
        tuning_iteration_workload(
            cfg, BATCH, SEQ, cfg.num_layers, 0,
            bits_per_block=bits, sparsity_per_block=sparsity,
        ),
        EDGE_GPU_LIKE,
        strategy="exhaustive",
    ).cycles
    edge_cycles = _mean_adaptive_cycles(cfg, bits, sparsity, "exhaustive")
    edge_unsched = _mean_adaptive_cycles(cfg, bits, sparsity, "heuristic")

    rows = [
        ["vanilla, naive schedule", vanilla_naive / 1e6, vanilla_tuned / vanilla_naive],
        ["vanilla, searched schedule (baseline)", vanilla_tuned / 1e6, 1.0],
        ["+ LUC compression", luc_cycles / 1e6, vanilla_tuned / luc_cycles],
        ["+ adaptive layer tuning, naive schedule", edge_unsched / 1e6,
         vanilla_tuned / edge_unsched],
        ["+ schedule search (full Edge-LLM)", edge_cycles / 1e6,
         vanilla_tuned / edge_cycles],
    ]

    # Wall-clock secondary signal.
    adaptive = AdaptiveLayerTrainer(
        model,
        AdaptiveTuningConfig(window=WINDOW, exit_points=EXIT_POINTS, lr=1e-3),
    )
    vanilla = vanilla_trainer(clone_model(base_state), lr=1e-3)
    t_adaptive = _wallclock(adaptive, adapt_batches(16))
    t_vanilla = _wallclock(vanilla, adapt_batches(16))
    rows.append(
        ["wall-clock (numpy): vanilla step", t_vanilla * 1e3, 1.0]
    )
    rows.append(
        ["wall-clock (numpy): Edge-LLM step", t_adaptive * 1e3,
         t_vanilla / t_adaptive]
    )

    emit(
        "fig3_speedup",
        "R-F3: per-iteration training cost — paper target: 2.92x speedup\n"
        "(modeled rows in Mcycles; wall-clock rows in ms)",
        ["configuration", "cost", "speedup vs vanilla"],
        rows,
        metrics={
            "paper_target_speedup": 2.92,
            "modeled_speedup": vanilla_tuned / edge_cycles,
            "modeled_speedup_luc_only": vanilla_tuned / luc_cycles,
            "wallclock_speedup": t_vanilla / t_adaptive,
            "vanilla_tuned_mcycles": vanilla_tuned / 1e6,
            "edge_llm_mcycles": edge_cycles / 1e6,
        },
        config={"policy_cost": policy.cost()},
    )

    assert vanilla_tuned / edge_cycles > 2.0
    # Wall-clock is sensitive to concurrent machine load; the modeled rows
    # above carry the deterministic claim.  Typical unloaded ratio: 1.9-2.9x.
    assert t_vanilla / t_adaptive > 1.2

    batches = list(adapt_batches(8))
    state = {"i": 0}

    def one_step():
        inputs, targets = batches[state["i"] % len(batches)]
        state["i"] += 1
        adaptive.train_step(inputs, targets)

    benchmark(one_step)


def test_fig3_wallclock_vanilla_reference(base_state, benchmark):
    """Wall-clock reference: one vanilla full-depth train step."""
    model = clone_model(base_state)
    trainer = vanilla_trainer(model, lr=1e-3)
    batches = list(adapt_batches(8))
    state = {"i": 0}

    def one_step():
        inputs, targets = batches[state["i"] % len(batches)]
        state["i"] += 1
        trainer.train_step(inputs, targets)

    benchmark(one_step)
