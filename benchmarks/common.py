"""Shared benchmark infrastructure.

Every benchmark regenerates one reconstructed table/figure (see DESIGN.md)
and both prints it and writes it under ``benchmarks/results/`` so the rows
survive pytest's output capture.
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

from repro.data import MarkovChainCorpus, MultipleChoiceTask, lm_batches
from repro.nn import AdamW, TransformerConfig, TransformerLM
from repro.tensor import cross_entropy
from repro.utils import format_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

VOCAB = 64
DIM = 64
LAYERS = 8
HEADS = 4
SEQ = 32
BATCH = 8
PRETRAIN_STEPS = 250
ADAPT_STEPS = 60
PRETRAIN_SEED = 0
ADAPT_SEED = 1

# Adaptive-tuning setup used across benches (calibrated so the modeled
# speedup lands in the paper's regime; see EXPERIMENTS.md).
EXIT_POINTS = [3, 6, 8]
WINDOW = 2
BUDGET = 0.30


def bench_config(**overrides) -> TransformerConfig:
    defaults = dict(
        vocab_size=VOCAB, dim=DIM, num_layers=LAYERS, num_heads=HEADS,
        max_len=128, seed=0,
    )
    defaults.update(overrides)
    return TransformerConfig(**defaults)


def pretrain_corpus() -> MarkovChainCorpus:
    return MarkovChainCorpus(vocab_size=VOCAB, order=1, seed=PRETRAIN_SEED)


def adapt_corpus() -> MarkovChainCorpus:
    return MarkovChainCorpus(vocab_size=VOCAB, order=1, seed=ADAPT_SEED)


def qa_task() -> MultipleChoiceTask:
    return MultipleChoiceTask(
        adapt_corpus(), num_choices=4, prompt_len=12, answer_len=5, seed=7
    )


def pretrain_model(steps: int = PRETRAIN_STEPS) -> TransformerLM:
    """Train the shared base model on the pretraining language."""
    model = TransformerLM(bench_config())
    corpus = pretrain_corpus()
    rng = np.random.default_rng(0)
    opt = AdamW(model.parameters(), lr=3e-3)
    for inputs, targets in lm_batches(corpus, BATCH, SEQ, steps, rng):
        loss = cross_entropy(model(inputs), targets)
        opt.zero_grad()
        loss.backward()
        opt.step()
    return model


def clone_model(state) -> TransformerLM:
    model = TransformerLM(bench_config())
    model.load_state_dict(state)
    return model


def adapt_batches(n_steps: int = ADAPT_STEPS, seed: int = 0):
    return lm_batches(adapt_corpus(), BATCH, SEQ, n_steps, np.random.default_rng(seed))


def calib_batch(corpus, seed: int = 42):
    return next(lm_batches(corpus, 4, SEQ, 1, np.random.default_rng(seed)))


def emit(name: str, title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Print a result table and persist it to benchmarks/results/."""
    table = format_table(headers, rows)
    text = f"{title}\n{table}\n"
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text)
    return text
