"""Shared benchmark infrastructure.

Every benchmark regenerates one reconstructed table/figure (see DESIGN.md)
and emits it three ways:

* printed to stdout (for humans watching the run),
* ``benchmarks/results/<name>.txt`` — the aligned plain-text table,
* ``benchmarks/results/<name>.json`` — a machine-readable sidecar with
  schema ``{bench, title, schema_version, headers, rows, metrics,
  config}`` that CI validates, diffs and uploads as an artifact.

Sizing knobs (``PRETRAIN_STEPS``, ``ADAPT_STEPS``) can be shrunk through
environment variables for smoke runs: ``REPRO_BENCH_PRETRAIN_STEPS`` and
``REPRO_BENCH_ADAPT_STEPS``.
"""

import json
import math
import os
from typing import Dict, Optional, Sequence

import numpy as np

from repro.data import MarkovChainCorpus, MultipleChoiceTask, lm_batches
from repro.nn import AdamW, TransformerConfig, TransformerLM
from repro.tensor import cross_entropy
from repro.utils import format_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

SIDECAR_SCHEMA_VERSION = 1

VOCAB = 64
DIM = 64
LAYERS = 8
HEADS = 4
SEQ = 32
BATCH = 8
PRETRAIN_STEPS = int(os.environ.get("REPRO_BENCH_PRETRAIN_STEPS", 250))
ADAPT_STEPS = int(os.environ.get("REPRO_BENCH_ADAPT_STEPS", 60))
PRETRAIN_SEED = 0
ADAPT_SEED = 1

# Adaptive-tuning setup used across benches (calibrated so the modeled
# speedup lands in the paper's regime; see EXPERIMENTS.md).
EXIT_POINTS = [3, 6, 8]
WINDOW = 2
BUDGET = 0.30

# Shared setup recorded in every sidecar's "config" (per-bench overrides
# are merged on top by ``emit``).
BENCH_CONFIG = {
    "vocab": VOCAB,
    "dim": DIM,
    "layers": LAYERS,
    "heads": HEADS,
    "seq": SEQ,
    "batch": BATCH,
    "pretrain_steps": PRETRAIN_STEPS,
    "adapt_steps": ADAPT_STEPS,
    "exit_points": EXIT_POINTS,
    "window": WINDOW,
    "budget": BUDGET,
}


def bench_config(**overrides) -> TransformerConfig:
    defaults = dict(
        vocab_size=VOCAB, dim=DIM, num_layers=LAYERS, num_heads=HEADS,
        max_len=128, seed=0,
    )
    defaults.update(overrides)
    return TransformerConfig(**defaults)


def pretrain_corpus() -> MarkovChainCorpus:
    return MarkovChainCorpus(vocab_size=VOCAB, order=1, seed=PRETRAIN_SEED)


def adapt_corpus() -> MarkovChainCorpus:
    return MarkovChainCorpus(vocab_size=VOCAB, order=1, seed=ADAPT_SEED)


def qa_task() -> MultipleChoiceTask:
    return MultipleChoiceTask(
        adapt_corpus(), num_choices=4, prompt_len=12, answer_len=5, seed=7
    )


def pretrain_model(steps: int = PRETRAIN_STEPS) -> TransformerLM:
    """Train the shared base model on the pretraining language."""
    model = TransformerLM(bench_config())
    corpus = pretrain_corpus()
    rng = np.random.default_rng(0)
    opt = AdamW(model.parameters(), lr=3e-3)
    for inputs, targets in lm_batches(corpus, BATCH, SEQ, steps, rng):
        loss = cross_entropy(model(inputs), targets)
        opt.zero_grad()
        loss.backward()
        opt.step()
    return model


def clone_model(state) -> TransformerLM:
    model = TransformerLM(bench_config())
    model.load_state_dict(state)
    return model


def adapt_batches(n_steps: int = ADAPT_STEPS, seed: int = 0):
    return lm_batches(adapt_corpus(), BATCH, SEQ, n_steps, np.random.default_rng(seed))


def calib_batch(corpus, seed: int = 42):
    return next(lm_batches(corpus, 4, SEQ, 1, np.random.default_rng(seed)))


# ----------------------------------------------------------------------
# Result emission + sidecar schema


def _json_value(value):
    """Coerce cells to JSON scalars (numpy types included)."""
    if hasattr(value, "item") and getattr(value, "size", None) == 1:
        value = value.item()
    if isinstance(value, float) and not math.isfinite(value):
        return None  # NaN/inf are not valid strict JSON
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_value(v) for v in value]
    return str(value)


def validate_sidecar(payload: Dict) -> None:
    """Raise ``ValueError`` unless ``payload`` is a schema-valid sidecar."""
    def fail(message: str):
        raise ValueError(f"invalid benchmark sidecar: {message}")

    if not isinstance(payload, dict):
        fail("payload is not an object")
    required = ["bench", "title", "schema_version", "headers", "rows",
                "metrics", "config"]
    for key in required:
        if key not in payload:
            fail(f"missing key {key!r}")
    if payload["schema_version"] != SIDECAR_SCHEMA_VERSION:
        fail(f"schema_version must be {SIDECAR_SCHEMA_VERSION}")
    if not isinstance(payload["bench"], str) or not payload["bench"]:
        fail("bench must be a non-empty string")
    if not isinstance(payload["title"], str) or not payload["title"]:
        fail("title must be a non-empty string")
    headers = payload["headers"]
    if (
        not isinstance(headers, list)
        or not headers
        or not all(isinstance(h, str) for h in headers)
    ):
        fail("headers must be a non-empty list of strings")
    rows = payload["rows"]
    if not isinstance(rows, list) or not rows:
        fail("rows must be a non-empty list")
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            fail(f"row {i} is not an object")
        if sorted(row.keys()) != sorted(headers):
            fail(f"row {i} keys {sorted(row)} do not match headers")
        for key, value in row.items():
            if not isinstance(value, (bool, int, float, str)) and value is not None:
                fail(f"row {i} cell {key!r} is not a JSON scalar")
    for section in ("metrics", "config"):
        block = payload[section]
        if not isinstance(block, dict):
            fail(f"{section} must be an object")
        for key, value in block.items():
            if not isinstance(key, str):
                fail(f"{section} key {key!r} is not a string")
            scalar = isinstance(value, (bool, int, float, str)) or value is None
            scalar_list = isinstance(value, list) and all(
                isinstance(v, (bool, int, float, str)) for v in value
            )
            if not (scalar or scalar_list):
                fail(f"{section}[{key!r}] is not a JSON scalar or scalar list")


def emit(
    name: str,
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    metrics: Optional[Dict] = None,
    config: Optional[Dict] = None,
) -> Dict:
    """Print a result table and persist it (.txt + schema-valid .json).

    ``metrics`` carries the bench's headline scalars (the values its
    assertions and the BENCH trajectory care about); ``config`` holds
    per-bench setup merged over the shared ``BENCH_CONFIG``.
    Returns the sidecar payload.
    """
    table = format_table(headers, rows)
    text = f"{title}\n{table}\n"
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text)

    headers = list(headers)
    payload = {
        "bench": name,
        "title": title,
        "schema_version": SIDECAR_SCHEMA_VERSION,
        "headers": headers,
        "rows": [
            dict(zip(headers, [_json_value(v) for v in row])) for row in rows
        ],
        "metrics": {k: _json_value(v) for k, v in (metrics or {}).items()},
        "config": {
            **BENCH_CONFIG,
            **{k: _json_value(v) for k, v in (config or {}).items()},
        },
    }
    validate_sidecar(payload)
    with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload
