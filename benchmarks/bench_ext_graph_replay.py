"""EXT — VJP graph capture/replay: train-step and serving-decode speedups.

The autograd core captures each steady-state workload once — the
adaptive trainer's window step (forward + backward + gradient program)
and the serving engine's per-bucket decode step — and replays the
recorded op sequence through the arena allocator without re-tracing:
no closure construction, no Tensor wrappers, no tape bookkeeping, and
per-request KV prefixes live in persistent padded slabs instead of
being re-stacked every step.

Replay is an optimization, never an approximation, and this bench
asserts the whole contract:

* the captured train step is >= 1.25x faster than the identical
  trace-every-step configuration, with a *bit-identical* loss
  trajectory,
* the captured decode step is >= 1.25x faster than the direct engine,
  with *token-identical* greedy outputs,
* speculative (draft/verify) decode and structurally sliced
  checkpoints also emit identical tokens with capture on and off —
  slicing swaps parameter objects, which the graphs' identity guards
  catch and re-capture.
"""

import gc
import time

import numpy as np

from repro.adaptive import AdaptiveLayerTrainer, AdaptiveTuningConfig, ExitHeadSet
from repro.data import lm_batches
from repro.nn import TransformerLM
from repro.nn.slicing import rotate_and_slice
from repro.obs import MetricsRegistry, use_registry
from repro.serve import GenerationEngine
from repro.tensor import graph_capture
from repro.tensor.arena import get_arena

from .common import ADAPT_STEPS, VOCAB, adapt_corpus, bench_config, emit

# Train workload: single-stream on-device adaptation (batch 1, short
# sequences) — the regime the paper targets and where per-step python
# overhead, not BLAS time, bounds iteration latency.
TRAIN_BATCH = 1
TRAIN_SEQ = 8

# Decode workload: batched continuous decode over medium prefixes.  The
# direct engine re-stacks every request's whole KV prefix each step;
# the captured path replays one graph per prefix bucket over persistent
# slabs, so its advantage grows with prefix length.
MAX_LEN = 256
DECODE_BATCH = 8
PROMPT_LEN = 64
WARM_STEPS = 6  # bucket captures happen here
TIMED_STEPS = 24

DRAFT_K = 4
DRAFT_EXIT = 4
SLICE_RATIO = 0.5
REPEATS = 3  # wall-clock rows take the best of 3 runs (noise rejection)

CFG_TRAIN = bench_config(tie_embeddings=False)
CFG_SERVE = bench_config(max_len=MAX_LEN)


class _Entry:
    """Minimal decode-entry: what the engine requires of scheduler rows."""

    def __init__(self, caches, last_token):
        self.caches = caches
        self.last_token = last_token


# ----------------------------------------------------------------------
# train-step workload


def _trainer(state, capture: bool) -> AdaptiveLayerTrainer:
    model = TransformerLM(CFG_TRAIN)
    model.load_state_dict(state)
    config = AdaptiveTuningConfig(
        window=2,
        exit_points=[model.num_layers],
        schedule="round_robin",
        lr=1e-3,
        optimizer_scope="window",
        graph_capture=capture,
    )
    return AdaptiveLayerTrainer(model, config)


def _train_run(trainer, batches):
    losses, times = [], []
    for inputs, targets in batches:
        stats = trainer.train_step(inputs, targets)
        losses.append(stats.loss)
        times.append(stats.wall_time_s)
    return losses, times


def _steady_median(times):
    """Median over steady-state steps (captures + warmup excluded)."""
    tail = times[2:] if len(times) > 4 else times
    return float(np.median(tail))


def _paired_train_run(state, batches):
    """One traced and one captured trainer stepped in lockstep, so machine
    load drifts onto both sides equally (the off-then-on layout let a load
    spike land on one side and swing the ratio).  Repeats keep the best
    steady-state median per side; trajectories are deterministic, so every
    repeat must reproduce them bitwise."""
    losses_off = losses_on = None
    best_off = best_on = float("inf")
    for _ in range(REPEATS):
        off = _trainer(state, False)
        on = _trainer(state, True)
        gc.collect()
        run_off, run_on, t_off, t_on = [], [], [], []
        for inputs, targets in batches:
            stats = off.train_step(inputs, targets)
            run_off.append(stats.loss)
            t_off.append(stats.wall_time_s)
            stats = on.train_step(inputs, targets)
            run_on.append(stats.loss)
            t_on.append(stats.wall_time_s)
        assert losses_off is None or run_off == losses_off
        assert losses_on is None or run_on == losses_on
        losses_off, losses_on = run_off, run_on
        best_off = min(best_off, _steady_median(t_off))
        best_on = min(best_on, _steady_median(t_on))
    return losses_off, losses_on, best_off, best_on


# ----------------------------------------------------------------------
# serving-decode workload


def _prefill_entries(engine, batch=DECODE_BATCH, prompt_len=PROMPT_LEN):
    entries = []
    for i in range(batch):
        prompt = np.random.default_rng(100 + i).integers(
            0, VOCAB, prompt_len
        ).tolist()
        caches = engine.model.new_caches()
        logits = engine.prefill(prompt, caches)
        entries.append(_Entry(caches, int(logits.argmax())))
    return entries


def _decode_run(model, capture: bool):
    """Greedy-decode WARM+TIMED steps; returns (tokens, median step s)."""
    gc.collect()
    engine = GenerationEngine(model, graph_capture=capture)
    entries = _prefill_entries(engine)
    tokens = [[] for _ in entries]
    times = []
    for step in range(WARM_STEPS + TIMED_STEPS):
        start = time.perf_counter()
        logits, _ = engine.decode_step(entries)
        elapsed = time.perf_counter() - start
        if step >= WARM_STEPS:
            times.append(elapsed)
        nxt = logits.argmax(axis=-1)
        for b, entry in enumerate(entries):
            entry.last_token = int(nxt[b])
            tokens[b].append(entry.last_token)
    return tokens, float(np.median(times))


def _paired_decode_run(model):
    """Direct and captured engines stepped in lockstep over the same
    model; best-of-REPEATS per side, token streams asserted stable."""
    tokens_off = tokens_on = None
    best_off = best_on = float("inf")

    def _advance(engine, entries, tokens):
        start = time.perf_counter()
        logits, _ = engine.decode_step(entries)
        elapsed = time.perf_counter() - start
        nxt = logits.argmax(axis=-1)
        for b, entry in enumerate(entries):
            entry.last_token = int(nxt[b])
            tokens[b].append(entry.last_token)
        return elapsed

    for _ in range(REPEATS):
        gc.collect()
        eng_off = GenerationEngine(model, graph_capture=False)
        eng_on = GenerationEngine(model, graph_capture=True)
        entries_off = _prefill_entries(eng_off)
        entries_on = _prefill_entries(eng_on)
        run_off = [[] for _ in entries_off]
        run_on = [[] for _ in entries_on]
        t_off, t_on = [], []
        for step in range(WARM_STEPS + TIMED_STEPS):
            elapsed_off = _advance(eng_off, entries_off, run_off)
            elapsed_on = _advance(eng_on, entries_on, run_on)
            if step >= WARM_STEPS:
                t_off.append(elapsed_off)
                t_on.append(elapsed_on)
        assert tokens_off is None or run_off == tokens_off
        assert tokens_on is None or run_on == tokens_on
        tokens_off, tokens_on = run_off, run_on
        best_off = min(best_off, float(np.median(t_off)))
        best_on = min(best_on, float(np.median(t_on)))
    return tokens_off, tokens_on, best_off, best_on


def _speculative_tokens(model, heads, capture: bool, n: int = 24):
    engine = GenerationEngine(
        model, draft_heads=heads, draft_exit=DRAFT_EXIT, draft_k=DRAFT_K
    )
    with graph_capture(capture):
        entries = _prefill_entries(engine, batch=4, prompt_len=16)
        tokens = [[e.last_token] for e in entries]
        while min(len(t) for t in tokens) < n:
            emitted = engine.speculative_decode_step(entries, max_new=n)
            for b, entry in enumerate(entries):
                tokens[b].extend(emitted[b])
                entry.last_token = tokens[b][-1]
    return [t[:n] for t in tokens]


def _sliced_tokens(capture: bool, n: int = 16):
    model = TransformerLM(CFG_SERVE)
    calib, _ = next(
        lm_batches(adapt_corpus(), 4, 32, 1, np.random.default_rng(3))
    )
    rotate_and_slice(model, calib, SLICE_RATIO)
    engine = GenerationEngine(model)
    with graph_capture(capture):
        entries = _prefill_entries(engine, batch=4, prompt_len=16)
        tokens = [[] for _ in entries]
        for _ in range(n):
            logits, _ = engine.decode_step(entries)
            nxt = logits.argmax(axis=-1)
            for b, entry in enumerate(entries):
                entry.last_token = int(nxt[b])
                tokens[b].append(entry.last_token)
    return tokens


def test_ext_graph_replay(benchmark):
    state = TransformerLM(CFG_TRAIN).state_dict()
    rng = np.random.default_rng(0)
    batches = list(
        lm_batches(adapt_corpus(), TRAIN_BATCH, TRAIN_SEQ, ADAPT_STEPS, rng)
    )

    # -- train-step: capture on vs off, bitwise trajectory ------------
    losses_off, losses_on, t_train_off, t_train_on = _paired_train_run(
        state, batches
    )
    train_speedup = t_train_off / t_train_on
    train_identical = losses_on == losses_off

    # Counter collection runs separately: metric increments on every
    # arena take are measurable at this model size, so the timed runs
    # above stay registry-free on both sides.
    reg = MetricsRegistry()
    with use_registry(reg):
        _train_run(_trainer(state, True), batches[:6])
    train_captures = reg.counter("tensor/graph/captures").value
    train_replays = reg.counter("tensor/graph/replays").value
    # The arena is process-global, so read its cumulative totals rather
    # than registry counters (the slabs were reserved in the timed runs).
    arena = get_arena()
    arena_reuse = arena.reuse_hits
    arena_bytes = arena.bytes_reserved

    # -- serving decode: capture on vs off, token identity ------------
    serve_model = TransformerLM(CFG_SERVE)
    tokens_off, tokens_on, t_dec_off, t_dec_on = _paired_decode_run(
        serve_model
    )
    decode_speedup = t_dec_off / t_dec_on
    decode_identical = tokens_on == tokens_off
    reg_dec = MetricsRegistry()
    with use_registry(reg_dec):
        _decode_run(serve_model, True)
    decode_captures = reg_dec.counter("tensor/graph/captures").value
    decode_replays = reg_dec.counter("tensor/graph/replays").value

    # -- speculative decode: identical drafts/acceptances -------------
    heads = ExitHeadSet(serve_model, exit_points=[DRAFT_EXIT], seed=0)
    spec_off = _speculative_tokens(serve_model, heads, False)
    spec_on = _speculative_tokens(serve_model, heads, True)
    spec_identical = spec_on == spec_off

    # -- sliced checkpoint: identity guards force clean re-capture ----
    sliced_off = _sliced_tokens(False)
    sliced_on = _sliced_tokens(True)
    sliced_identical = sliced_on == sliced_off

    rows = [
        ["train step ms, re-trace every step", t_train_off * 1e3, 1.0],
        ["train step ms, captured replay", t_train_on * 1e3, train_speedup],
        ["decode step ms, direct engine", t_dec_off * 1e3, 1.0],
        ["decode step ms, captured replay", t_dec_on * 1e3, decode_speedup],
        ["train loss trajectory bit-identical", int(train_identical), 1.0],
        ["decode tokens identical", int(decode_identical), 1.0],
        ["speculative tokens identical", int(spec_identical), 1.0],
        ["sliced-checkpoint tokens identical", int(sliced_identical), 1.0],
    ]
    metrics = {
        "train_speedup": train_speedup,
        "decode_speedup": decode_speedup,
        "train_trajectory_identical": int(train_identical),
        "decode_tokens_identical": int(decode_identical),
        "spec_tokens_identical": int(spec_identical),
        "sliced_tokens_identical": int(sliced_identical),
        "train_captures": train_captures,
        "train_replays": train_replays,
        "decode_captures": decode_captures,
        "decode_replays": decode_replays,
        "arena_reuse_hits": arena_reuse,
        "arena_bytes_reserved": arena_bytes,
        "train_step_ms": t_train_on * 1e3,
        "decode_step_ms": t_dec_on * 1e3,
    }
    emit(
        "ext_graph_replay",
        "EXT: VJP graph capture/replay vs re-tracing\n"
        f"(train: batch {TRAIN_BATCH} seq {TRAIN_SEQ} window step; decode: "
        f"batch {DECODE_BATCH} prefix {PROMPT_LEN}+ continuous greedy)",
        ["configuration", "value", "ratio vs baseline"],
        rows,
        metrics=metrics,
        config={
            "train_batch": TRAIN_BATCH,
            "train_seq": TRAIN_SEQ,
            "decode_batch": DECODE_BATCH,
            "prompt_len": PROMPT_LEN,
            "timed_steps": TIMED_STEPS,
            "draft_k": DRAFT_K,
            "slice_ratio": SLICE_RATIO,
        },
    )

    assert train_identical, (
        "captured train step diverged from the traced loss trajectory"
    )
    assert decode_identical, "captured decode changed greedy tokens"
    assert spec_identical, "captured speculative decode changed tokens"
    assert sliced_identical, "captured decode on a sliced model changed tokens"
    assert train_captures >= 1 and train_replays > train_captures
    assert decode_captures >= 1 and decode_replays > decode_captures
    assert train_speedup >= 1.25, (
        f"train-step replay speedup {train_speedup:.2f}x < 1.25x"
    )
    assert decode_speedup >= 1.25, (
        f"decode replay speedup {decode_speedup:.2f}x < 1.25x"
    )
