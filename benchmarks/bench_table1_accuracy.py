"""R-T1 — main results table: adaptation quality vs tuning method.

Reconstruction of the paper's headline table: Edge-LLM (LUC + adaptive
layer tuning + voting) reaches task quality comparable to vanilla full
fine-tuning while the baselines trade quality or memory differently.

Columns: trainable parameters, adapted perplexity on the downstream
language, multiple-choice accuracy, and worst-case iteration activation
memory (the on-device constraint).
"""

from repro.adaptive import (
    AdaptiveLayerTrainer,
    AdaptiveTuningConfig,
    VotingCombiner,
    vanilla_trainer,
)
from repro.eval import (
    model_perplexity,
    multiple_choice_accuracy,
    perplexity,
    training_memory_report,
)
from repro.luc import enumerate_layer_options, measure_sensitivity, search_policy, apply_luc
from repro.peft import LadderSideNetwork, apply_bitfit, apply_lora, tune

from .common import (
    ADAPT_STEPS,
    BATCH,
    BUDGET,
    EXIT_POINTS,
    SEQ,
    WINDOW,
    adapt_batches,
    adapt_corpus,
    bench_config,
    calib_batch,
    clone_model,
    emit,
    pretrain_corpus,
    qa_task,
)


def _activation_mb(cfg, grad_blocks, trainable):
    report = training_memory_report(
        cfg, BATCH, SEQ, grad_blocks=grad_blocks, trainable_params=trainable
    )
    return (report.activation_bytes + report.optimizer_bytes) / 1e6


def test_table1_main_results(base_state, benchmark):
    cfg = bench_config()
    corpus = adapt_corpus()
    qa_items = qa_task().dataset(60)
    rows = []

    # --- zero-shot reference -----------------------------------------
    model = clone_model(base_state)
    rows.append([
        "no adaptation", 0,
        model_perplexity(model, corpus, num_batches=4),
        multiple_choice_accuracy(lambda ids: model(ids), qa_items),
        0.0,
    ])

    # --- vanilla full fine-tuning ------------------------------------
    model = clone_model(base_state)
    trainer = vanilla_trainer(model, lr=1e-3)
    trainer.train(adapt_batches(ADAPT_STEPS))
    rows.append([
        "full fine-tuning (vanilla)",
        model.num_parameters(),
        model_perplexity(model, corpus, num_batches=4),
        multiple_choice_accuracy(lambda ids: model(ids), qa_items),
        _activation_mb(cfg, cfg.num_layers, model.num_parameters()),
    ])

    # --- LoRA ----------------------------------------------------------
    model = clone_model(base_state)
    _, trainable = apply_lora(model, rank=4, seed=0)
    tune(lambda ids: model(ids), trainable, adapt_batches(ADAPT_STEPS), lr=5e-3)
    n_lora = sum(p.size for p in trainable)
    rows.append([
        "LoRA (r=4)", n_lora,
        model_perplexity(model, corpus, num_batches=4),
        multiple_choice_accuracy(lambda ids: model(ids), qa_items),
        _activation_mb(cfg, cfg.num_layers, n_lora),
    ])

    # --- BitFit ----------------------------------------------------------
    model = clone_model(base_state)
    trainable = apply_bitfit(model)
    tune(lambda ids: model(ids), trainable, adapt_batches(ADAPT_STEPS), lr=1e-2)
    n_bitfit = sum(p.size for p in trainable)
    rows.append([
        "BitFit", n_bitfit,
        model_perplexity(model, corpus, num_batches=4),
        multiple_choice_accuracy(lambda ids: model(ids), qa_items),
        _activation_mb(cfg, cfg.num_layers, n_bitfit),
    ])

    # --- Ladder Side Tuning ----------------------------------------------
    model = clone_model(base_state)
    lst = LadderSideNetwork(model, reduction=4, seed=0)
    tune(lst, lst.side_parameters(), adapt_batches(ADAPT_STEPS), lr=5e-3)
    rows.append([
        "Ladder Side Tuning", lst.num_side_parameters(),
        perplexity(lst, corpus, num_batches=4),
        multiple_choice_accuracy(lst, qa_items),
        _activation_mb(cfg, 0, lst.num_side_parameters()),
    ])

    # --- Edge-LLM (full pipeline) -----------------------------------------
    model = clone_model(base_state)
    options = enumerate_layer_options((2, 4, 8), (0.0, 0.3, 0.5))
    profile = measure_sensitivity(
        model, *calib_batch(pretrain_corpus()), options, metric="loss_delta"
    )
    policy = search_policy(profile, cfg.num_layers, BUDGET, options=options)
    apply_luc(model, policy)
    trainer = AdaptiveLayerTrainer(
        model, AdaptiveTuningConfig(window=WINDOW, exit_points=EXIT_POINTS, lr=2e-3)
    )
    trainer.train(adapt_batches(ADAPT_STEPS))
    voter = VotingCombiner(model, trainer.exit_heads, strategy="calibrated")
    voter.calibrate(*calib_batch(corpus, seed=99))
    window = trainer.max_window()
    rows.append([
        "Edge-LLM (LUC+adaptive+voting)",
        trainer.window_trainable_params(window),
        perplexity(voter.combined_logits, corpus, num_batches=4),
        multiple_choice_accuracy(voter.combined_logits, qa_items),
        _activation_mb(cfg, window.depth, trainer.window_trainable_params(window)),
    ])

    by_name = {r[0]: r for r in rows}
    edge_row = by_name["Edge-LLM (LUC+adaptive+voting)"]
    vanilla_row = by_name["full fine-tuning (vanilla)"]
    emit(
        "table1_accuracy",
        "R-T1: adaptation quality by tuning method "
        f"({ADAPT_STEPS} steps on the downstream language)",
        ["method", "trainable", "ppl (down)", "QA acc", "act+opt MB"],
        rows,
        metrics={
            "edge_llm_ppl": edge_row[2],
            "edge_llm_qa_acc": edge_row[3],
            "vanilla_ppl": vanilla_row[2],
            "vanilla_qa_acc": vanilla_row[3],
            "zero_shot_ppl": by_name["no adaptation"][2],
            "edge_llm_act_opt_mb": edge_row[4],
            "vanilla_act_opt_mb": vanilla_row[4],
        },
    )
    # Edge-LLM must clearly beat no adaptation...
    assert by_name["Edge-LLM (LUC+adaptive+voting)"][2] < by_name["no adaptation"][2] / 2
    # ...with quality approaching vanilla tuning (paper: "comparable";
    # see EXPERIMENTS.md for the gap-vs-steps discussion).
    assert (
        by_name["Edge-LLM (LUC+adaptive+voting)"][3]
        >= by_name["full fine-tuning (vanilla)"][3] - 0.25
    )
    # ...and beating every parameter-efficient baseline at this budget.
    for baseline in ("LoRA (r=4)", "BitFit", "Ladder Side Tuning"):
        assert (
            by_name["Edge-LLM (LUC+adaptive+voting)"][3] > by_name[baseline][3]
        )
    # ...and far lower activation+optimizer memory.
    assert (
        by_name["Edge-LLM (LUC+adaptive+voting)"][4]
        < by_name["full fine-tuning (vanilla)"][4] / 2
    )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
