"""EXT-E3 — extension: inference-phase cost and the price of voting.

The tuning loop is the paper's focus, but the deployed model also serves
requests.  This bench prices prompt prefill + token generation on the edge
accelerator for: the uncompressed model, the LUC-compressed model, and the
compressed model with voting enabled (extra exit unembeddings) — showing
compression's inference dividend and that the voting overhead is marginal.
"""

from repro.hw import EDGE_GPU_LIKE, generation_cost
from repro.luc import LUCPolicy

from .common import EXIT_POINTS, bench_config, emit

PROMPT_LEN = 48
NEW_TOKENS = 16
POLICY = LUCPolicy.uniform(8, 4, 0.3)


def test_ext_inference_costs(base_state, benchmark):
    cfg = bench_config()

    dense = generation_cost(
        cfg, EDGE_GPU_LIKE, batch=1, prompt_len=PROMPT_LEN,
        new_tokens=NEW_TOKENS, strategy="exhaustive",
    )
    compressed = generation_cost(
        cfg, EDGE_GPU_LIKE, batch=1, prompt_len=PROMPT_LEN,
        new_tokens=NEW_TOKENS,
        bits_per_block=POLICY.bits_per_block(),
        sparsity_per_block=POLICY.sparsity_per_block(),
        strategy="exhaustive",
    )
    voted = generation_cost(
        cfg, EDGE_GPU_LIKE, batch=1, prompt_len=PROMPT_LEN,
        new_tokens=NEW_TOKENS,
        bits_per_block=POLICY.bits_per_block(),
        sparsity_per_block=POLICY.sparsity_per_block(),
        exit_points=EXIT_POINTS,
        strategy="exhaustive",
    )

    rows = []
    for name, cost in [
        ("uncompressed", dense),
        ("LUC-compressed", compressed),
        ("LUC-compressed + voting", voted),
    ]:
        rows.append([
            name,
            cost["prefill_cycles"] / 1e6,
            cost["decode_cycles"] / 1e6,
            cost["voting_cycles"] / 1e6,
            cost["total_cycles"] / 1e6,
            dense["total_cycles"] / cost["total_cycles"],
        ])

    emit(
        "ext_inference",
        f"EXT-E3: generation cost (prefill {PROMPT_LEN} + {NEW_TOKENS} tokens)",
        ["configuration", "prefill Mcyc", "decode Mcyc", "voting Mcyc",
         "total Mcyc", "speedup"],
        rows,
        metrics={
            "dense_total_mcycles": dense["total_cycles"] / 1e6,
            "compressed_total_mcycles": compressed["total_cycles"] / 1e6,
            "voted_total_mcycles": voted["total_cycles"] / 1e6,
            "compression_speedup": (
                dense["total_cycles"] / compressed["total_cycles"]
            ),
            "voting_overhead_fraction": (
                voted["voting_cycles"] / voted["total_cycles"]
            ),
        },
        config={"prompt_len": PROMPT_LEN, "new_tokens": NEW_TOKENS},
    )

    # Compression speeds up inference...
    assert compressed["total_cycles"] < dense["total_cycles"]
    # ...and the voting overhead is a small fraction of the total.
    overhead = voted["voting_cycles"]
    assert overhead < 0.15 * voted["total_cycles"]
    assert voted["total_cycles"] < dense["total_cycles"]

    benchmark.pedantic(
        lambda: generation_cost(
            cfg, EDGE_GPU_LIKE, 1, PROMPT_LEN, 2,
            bits_per_block=POLICY.bits_per_block(),
            sparsity_per_block=POLICY.sparsity_per_block(),
            strategy="heuristic",
        ),
        rounds=3, iterations=1,
    )
