"""Session-scoped fixtures shared by all benchmarks."""

import pytest

from .common import pretrain_model


@pytest.fixture(scope="session")
def base_state():
    """State dict of the pretrained base model (trained once per run)."""
    return pretrain_model().state_dict()
