"""R-A4 — ablation: schedule-search strategy convergence.

On a fixed set of representative GEMMs from the compressed workload,
compares how close random sampling and the evolutionary search get to the
exhaustive optimum as their sample budget grows.
"""

from repro.hw import (
    EDGE_GPU_LIKE,
    GEMMWorkload,
    evolutionary_best,
    exhaustive_best,
    gemm_cost,
    heuristic_schedule,
    random_best,
)

from .common import BATCH, SEQ, bench_config, emit

CFG = bench_config()

# Representative GEMMs: a compressed projection, an attention matmul, the
# wide MLP projection and the vocab head.
GEMMS = [
    GEMMWorkload("proj_4bit", BATCH * SEQ, CFG.dim, CFG.dim, bits=4, sparsity=0.5),
    GEMMWorkload("scores", BATCH * SEQ, CFG.dim, SEQ, bits=16),
    GEMMWorkload("mlp_up", BATCH * SEQ, CFG.dim, CFG.resolved_mlp_hidden(), bits=4),
    GEMMWorkload("head", BATCH * SEQ, CFG.dim, CFG.vocab_size, bits=16),
]


def _total(schedules):
    return sum(
        gemm_cost(g, s, EDGE_GPU_LIKE).cycles for g, s in zip(GEMMS, schedules)
    )


def test_abl_schedule_search_convergence(base_state, benchmark):
    optimum = _total([exhaustive_best(g, EDGE_GPU_LIKE) for g in GEMMS])
    heuristic = _total([heuristic_schedule(g, EDGE_GPU_LIKE) for g in GEMMS])

    rows = [["heuristic (no search)", 0, heuristic / 1e6, heuristic / optimum]]
    random_gaps = {}
    for n in (5, 20, 80):
        total = _total(
            [random_best(g, EDGE_GPU_LIKE, n_samples=n, seed=1) for g in GEMMS]
        )
        random_gaps[n] = total / optimum
        rows.append([f"random ({n} samples)", n, total / 1e6, total / optimum])
    for gens in (4, 12):
        total = _total(
            [
                evolutionary_best(g, EDGE_GPU_LIKE, generations=gens, seed=1)
                for g in GEMMS
            ]
        )
        rows.append(
            [f"evolutionary ({gens} gens x16)", gens * 16, total / 1e6,
             total / optimum]
        )
    rows.append(["exhaustive (optimum)", "-", optimum / 1e6, 1.0])

    emit(
        "abl_hwsearch",
        "R-A4: schedule-search strategy convergence "
        "(total cycles over 4 representative GEMMs)",
        ["strategy", "samples", "Mcycles", "gap vs optimum"],
        rows,
        metrics={
            "optimum_mcycles": optimum / 1e6,
            "heuristic_gap": heuristic / optimum,
            "random_5_gap": random_gaps[5],
            "random_80_gap": random_gaps[80],
        },
        config={"num_gemms": len(GEMMS)},
    )

    assert heuristic / optimum > 1.3  # search is worth doing
    assert random_gaps[80] <= random_gaps[5] + 1e-9  # more samples never hurt
    assert random_gaps[80] < 1.5  # random converges toward the optimum

    benchmark.pedantic(
        lambda: [exhaustive_best(g, EDGE_GPU_LIKE) for g in GEMMS],
        rounds=3,
        iterations=1,
    )
