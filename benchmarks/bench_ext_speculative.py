"""EXT — speculative serving: prefix sharing + self-speculative decode.

A fleet of synthetic chat sessions shares one long system prompt and
differs only in a short per-session suffix — the canonical serving
workload the PR 4 engine recomputes from scratch per request.  The
speculative runtime attacks both phases:

* **prefill** — ``share_prefixes=True`` leases the shared prompt's KV
  out of the radix trie, so only the first session pays the full-length
  forward; every later session prefills just its unique suffix,
* **decode** — greedy rows draft ``k`` tokens through a distilled
  mid-depth exit head and verify them in one full-depth pass, emitting
  ``accepted + 1`` tokens per cycle.

The acceptance bar is >= 2x the tokens/s of the PR 4 engine (same
batch size, no sharing, no speculation) with *identical* greedy tokens
per request — speculation and sharing change throughput, never results.
"""

import time

import numpy as np

from repro.adaptive import ExitHeadSet, distill_exit_heads
from repro.data import lm_batches
from repro.nn import AdamW, TransformerLM
from repro.obs import MetricsRegistry, use_registry
from repro.serve import Request, serve_batch
from repro.tensor import cross_entropy

from .common import bench_config, emit, pretrain_corpus, pretrain_model

NUM_SESSIONS = 16
MAX_LEN = 256  # serving context: longer than the training window
SHARED_PREFIX_LEN = 192
SUFFIX_LEN = 4
MAX_NEW = 12
DRAFT_K = 6
DRAFT_EXIT = 4  # mid-depth tap: 4 of 8 layers
DISTILL_STEPS = 60
LONG_FT_STEPS = 30
LONG_SEQ = 208  # cover the positions the drafts are verified at


def _requests(corpus):
    """Sessions sharing a corpus-sampled system prompt + unique suffixes."""
    rng = np.random.default_rng(13)
    (shared,), _ = next(lm_batches(corpus, 1, SHARED_PREFIX_LEN, 1, rng))
    prompts = []
    for _ in range(NUM_SESSIONS):
        (suffix,), _ = next(lm_batches(corpus, 1, SUFFIX_LEN, 1, rng))
        prompts.append(shared.tolist() + suffix.tolist())
    return [
        Request(f"session-{i}", prompt=p, max_new_tokens=MAX_NEW)
        for i, p in enumerate(prompts)
    ]


def _serve(model, reqs, repeats=3, **kw):
    """Serve ``reqs``; report the best-of-``repeats`` wall time."""
    elapsed = float("inf")
    for _ in range(repeats):
        reg = MetricsRegistry()
        with use_registry(reg):
            start = time.perf_counter()
            results = serve_batch(
                model, reqs, max_batch_size=NUM_SESSIONS, **kw
            )
            elapsed = min(elapsed, time.perf_counter() - start)
    return results, elapsed, reg


def test_ext_speculative(benchmark):
    corpus = pretrain_corpus()
    # Pretrain at the default window, then serve with a longer context so
    # the shared system prompt dominates prefill cost.  The RoPE buffers
    # are position tables, not learned state — keep the long-context ones.
    model = TransformerLM(bench_config(max_len=MAX_LEN))
    state = {
        k: v for k, v in pretrain_model().state_dict().items()
        if not k.endswith(("rope_cos", "rope_sin"))
    }
    model.load_state_dict(state, strict=False)
    # Briefly fine-tune at the serving length: pretraining ran on short
    # windows, and a model served far past its trained positions drifts
    # into behaviour a shallow draft head cannot track.
    opt = AdamW(model.parameters(), lr=1e-3)
    for x, y in lm_batches(
        corpus, 2, LONG_SEQ, LONG_FT_STEPS, np.random.default_rng(3)
    ):
        loss = cross_entropy(model(x), y)
        opt.zero_grad()
        loss.backward()
        opt.step()
    # Untied head: distillation needs full projection capacity to mimic
    # the final head from the mid-depth hidden state.  Distilling at
    # serving-length sequences matters for the same reason the fine-tune
    # does: draft/verify agreement has to hold at the positions decode
    # actually visits.
    heads = ExitHeadSet(
        model, exit_points=[DRAFT_EXIT], tie_embeddings=False, seed=0
    )
    distill_exit_heads(
        model, heads,
        lm_batches(corpus, 4, LONG_SEQ, DISTILL_STEPS,
                   np.random.default_rng(1)),
        lr=3e-3,
        temperature=1.5,  # sharp-ish teacher: argmax agreement is the target
    )
    reqs = _requests(corpus)
    total_new = NUM_SESSIONS * MAX_NEW

    baseline, base_s, _ = _serve(model, reqs)
    shared, share_s, share_reg = _serve(model, reqs, share_prefixes=True)
    spec, spec_s, spec_reg = _serve(
        model, reqs,
        share_prefixes=True, draft_heads=heads, draft_k=DRAFT_K,
    )

    # Determinism contract: sharing + speculation never change a token.
    for b, sh, sp in zip(baseline, shared, spec):
        assert b.tokens == sh.tokens == sp.tokens
        assert b.finish_reason == sh.finish_reason == sp.finish_reason
    tokens_identical = 1.0

    reused = spec_reg.counter("serve/pool/prefix_tokens_reused").value
    drafted = spec_reg.counter("serve/spec/draft_tokens").value
    accepted = spec_reg.counter("serve/spec/accepted_tokens").value
    acceptance = accepted / drafted if drafted else 0.0
    speedup = base_s / spec_s

    def row(mode, elapsed):
        return [mode, NUM_SESSIONS, total_new, round(elapsed * 1e3, 1),
                round(total_new / elapsed, 1), round(base_s / elapsed, 2)]

    rows = [
        row("baseline (PR4 engine)", base_s),
        row("prefix-shared", share_s),
        row("prefix-shared+speculative", spec_s),
    ]
    metrics = {
        "baseline_tok_s": total_new / base_s,
        "speculative_tok_s": total_new / spec_s,
        "speedup": speedup,
        "tokens_identical": tokens_identical,
        "acceptance_rate": acceptance,
        "prefix_tokens_reused": reused,
        "shared_prefill_speedup": base_s / share_s,
    }
    emit(
        "ext_speculative",
        f"EXT: speculative serving, {NUM_SESSIONS} sessions sharing a "
        f"{SHARED_PREFIX_LEN}-token system prompt "
        f"(+{SUFFIX_LEN}+{MAX_NEW} tokens each, draft k={DRAFT_K})",
        ["mode", "sessions", "new_tokens", "time_ms", "tokens_per_s",
         "speedup"],
        rows,
        metrics=metrics,
        config={
            "sessions": NUM_SESSIONS,
            "shared_prefix_len": SHARED_PREFIX_LEN,
            "suffix_len": SUFFIX_LEN,
            "max_new_tokens": MAX_NEW,
            "draft_k": DRAFT_K,
            "draft_exit": DRAFT_EXIT,
            "distill_steps": DISTILL_STEPS,
        },
    )

    # The trie must serve every later session's shared prompt from cache:
    # all but the first session reuse (at least) the shared prefix.
    assert reused >= (NUM_SESSIONS - 1) * SHARED_PREFIX_LEN

    # Acceptance bar: >= 2x PR 4 engine tokens/s on the prefix-sharing
    # scenario with token-identical greedy outputs (asserted above).
    assert speedup >= 2.0

    benchmark.pedantic(
        lambda: _serve(model, reqs[:2], share_prefixes=True,
                       draft_heads=heads, draft_k=DRAFT_K),
        rounds=3,
        iterations=1,
    )
